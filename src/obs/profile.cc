#include "obs/profile.h"

#include <map>

namespace raptor::obs {

double Profile::TopLevelMs() const {
  double sum = 0;
  for (const StageStat& stage : stages) {
    if (stage.stage.find('/') == std::string::npos) sum += stage.ms;
  }
  return sum;
}

Profile AggregateProfile(const Trace& trace) {
  Profile profile;
  if (trace.spans.empty()) return profile;
  profile.total_ms = trace.TotalMs();

  // Span ids are topologically ordered (parents precede children), so one
  // forward pass can build every span's path from its parent's.
  std::vector<std::string> paths(trace.spans.size());
  std::map<std::string, size_t> stage_index;
  for (size_t i = 1; i < trace.spans.size(); ++i) {
    const SpanData& span = trace.spans[i];
    const std::string& parent_path =
        span.parent == 0 ? std::string() : paths[span.parent];
    paths[i] = parent_path.empty() ? span.name
                                   : parent_path + "/" + span.name;
    auto [it, inserted] =
        stage_index.emplace(paths[i], profile.stages.size());
    if (inserted) {
      profile.stages.push_back(StageStat{paths[i], 0, 0});
    }
    StageStat& stage = profile.stages[it->second];
    stage.ms += span.DurationMs();
    stage.count += 1;
  }
  return profile;
}

}  // namespace raptor::obs
