#include "obs/slo.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/resource.h"

namespace raptor::obs {

namespace {

constexpr size_t kMaxTransitions = 256;

uint64_t UnixMillisNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// hunt_latency_p99 tallies: good = hunts whose latency landed in a bucket
/// whose bound is within the target (the target snaps down to a bucket
/// bound), bad = the rest. Zeroes until the first hunt registers the
/// histogram.
SloSample HuntLatencySample(double target_ms) {
  SloSample sample;
  const Histogram* h = Registry::Default().FindHistogram("raptor_hunt_ms");
  if (h == nullptr) return sample;
  uint64_t good = 0;
  const std::vector<double>& bounds = h->bounds();
  for (size_t i = 0; i < bounds.size() && bounds[i] <= target_ms; ++i) {
    good += h->BucketCount(i);
  }
  uint64_t total = h->Count();
  sample.good = static_cast<double>(good);
  sample.bad = static_cast<double>(total - std::min(total, good));
  return sample;
}

SloSample HttpErrorSample() {
  Registry& registry = Registry::Default();
  double errors = static_cast<double>(
      registry.CounterFamilySum("raptor_http_errors_total"));
  double responses = static_cast<double>(
      registry.CounterFamilySum("raptor_http_responses_total"));
  SloSample sample;
  sample.bad = errors;
  sample.good = std::max(0.0, responses - errors);
  return sample;
}

SloSample DegradedHuntSample() {
  Registry& registry = Registry::Default();
  double degraded = static_cast<double>(
      registry.CounterValue("raptor_hunts_degraded_total"));
  double hunts =
      static_cast<double>(registry.CounterValue("raptor_hunts_total"));
  SloSample sample;
  sample.bad = degraded;
  sample.good = std::max(0.0, hunts - degraded);
  return sample;
}

/// memory_headroom tallies (kInstant): bad = sum of component peak bytes,
/// good = remaining budget. The per-sample ratio is budget utilization.
SloSample MemoryHeadroomSample(uint64_t budget_bytes) {
  double used = 0;
  ResourceTracker& tracker = ResourceTracker::Default();
  for (size_t i = 0; i < kNumComponents; ++i) {
    used += static_cast<double>(
        tracker.PeakBytes(static_cast<Component>(i)));
  }
  SloSample sample;
  sample.bad = used;
  sample.good = std::max(0.0, static_cast<double>(budget_bytes) - used);
  return sample;
}

}  // namespace

std::string_view AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kOk:
      return "ok";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
  }
  return "ok";
}

/// One installed SLO: its spec, the rolling sample ring, and the state
/// machine's position.
struct SloEngine::Runtime {
  SloSpec spec;
  struct Point {
    std::chrono::steady_clock::time_point at;
    SloSample sample;
  };
  std::deque<Point> points;
  AlertState state = AlertState::kOk;
  std::chrono::steady_clock::time_point pending_since{};
  uint64_t state_since_unix_ms = 0;
  double short_burn = 0;
  double long_burn = 0;
  double error_ratio = 0;
  Gauge* gauge = nullptr;

  /// Error ratio over the trailing window ending at `now`.
  double WindowRatio(double window_s,
                     std::chrono::steady_clock::time_point now) const {
    auto cutoff = now - std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(window_s));
    if (spec.kind == SloKind::kCumulative) {
      // Delta between the oldest in-window point and the newest. A single
      // point has no delta: the window saw no events yet.
      const Point* first = nullptr;
      for (const Point& p : points) {
        if (p.at >= cutoff) {
          first = &p;
          break;
        }
      }
      if (first == nullptr || first == &points.back()) return 0;
      const Point& last = points.back();
      double bad = last.sample.bad - first->sample.bad;
      double good = last.sample.good - first->sample.good;
      double total = bad + good;
      if (total <= 0) return 0;
      return std::max(0.0, bad) / total;
    }
    // kInstant: average of per-sample ratios.
    double sum = 0;
    size_t n = 0;
    for (const Point& p : points) {
      if (p.at < cutoff) continue;
      double total = p.sample.bad + p.sample.good;
      if (total > 0) sum += p.sample.bad / total;
      ++n;
    }
    return n == 0 ? 0 : sum / static_cast<double>(n);
  }
};

SloEngine& SloEngine::Default() {
  static SloEngine* engine = new SloEngine();  // leaked: outlives everything
  return *engine;
}

void SloEngine::Configure(const SloOptions& options) {
  Stop();
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  slos_.clear();
  transitions_.clear();
  if (options_.enabled) InstallDefaultCatalogLocked();
}

SloOptions SloEngine::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

void SloEngine::InstallDefaultCatalogLocked() {
  const SloOptions& o = options_;
  // Shared state-machine tuning applied to every catalog entry.
  auto tune = [&o](SloSpec* spec) {
    spec->short_window_s = o.short_window_s;
    spec->long_window_s = o.long_window_s;
    spec->burn_threshold = o.burn_threshold;
    spec->pending_for_s = o.pending_for_s;
  };

  SloSpec hunt;
  hunt.name = "hunt_latency_p99";
  hunt.description = "Hunts must finish within the p99 latency target";
  hunt.kind = SloKind::kCumulative;
  hunt.objective = o.hunt_latency_objective;
  double target_ms = o.hunt_p99_target_ms;
  hunt.sample = [target_ms] { return HuntLatencySample(target_ms); };
  tune(&hunt);
  AddSloLocked(hunt);

  SloSpec http;
  http.name = "http_error_rate";
  http.description = "HTTP responses must not be errors (408/413/5xx)";
  http.kind = SloKind::kCumulative;
  http.objective = o.http_error_objective;
  http.sample = HttpErrorSample;
  tune(&http);
  AddSloLocked(http);

  SloSpec degraded;
  degraded.name = "degraded_hunt_fraction";
  degraded.description = "Hunts must complete without degraded fallbacks";
  degraded.kind = SloKind::kCumulative;
  degraded.objective = o.degraded_hunt_objective;
  degraded.sample = DegradedHuntSample;
  tune(&degraded);
  AddSloLocked(degraded);

  SloSpec memory;
  memory.name = "memory_headroom";
  memory.description =
      "Component peak memory must stay within the budget's burn threshold";
  memory.kind = SloKind::kInstant;
  memory.objective = 0;  // burn == budget utilization
  uint64_t budget = o.memory_budget_bytes;
  memory.sample = [budget] { return MemoryHeadroomSample(budget); };
  tune(&memory);
  memory.burn_threshold = o.memory_burn_threshold;
  AddSloLocked(memory);
}

void SloEngine::AddSlo(const SloSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  AddSloLocked(spec);
}

void SloEngine::AddSloLocked(const SloSpec& spec) {
  auto runtime = std::make_unique<Runtime>();
  runtime->spec = spec;
  runtime->state_since_unix_ms = UnixMillisNow();
  runtime->gauge = Registry::Default().GetGauge(
      "raptor_alert_state",
      "SLO alert state machine position (0=ok, 1=pending, 2=firing)",
      {{"slo", spec.name}});
  runtime->gauge->Set(static_cast<int64_t>(AlertState::kOk));
  slos_.push_back(std::move(runtime));
}

void SloEngine::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  evaluator_ = std::thread([this] { EvaluatorLoop(); });
}

void SloEngine::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  evaluator_.join();
}

bool SloEngine::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void SloEngine::EvaluatorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    EvaluateLocked();
    auto interval = std::chrono::duration<double, std::milli>(
        std::max(1.0, options_.eval_interval_ms));
    cv_.wait_for(lock, interval, [this] { return !running_; });
  }
}

void SloEngine::EvaluateNow() {
  std::lock_guard<std::mutex> lock(mu_);
  EvaluateLocked();
}

void SloEngine::EvaluateLocked() {
  auto now = std::chrono::steady_clock::now();
  uint64_t unix_ms = UnixMillisNow();
  for (const auto& slo : slos_) {
    if (!slo->spec.sample) continue;
    slo->points.push_back({now, slo->spec.sample()});
    // Prune beyond the long window, always keeping the newest point.
    auto cutoff = now - std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                slo->spec.long_window_s));
    while (slo->points.size() > 1 && slo->points.front().at < cutoff) {
      slo->points.pop_front();
    }

    double budget = std::max(1e-9, 1.0 - slo->spec.objective);
    double short_ratio = slo->WindowRatio(slo->spec.short_window_s, now);
    double long_ratio = slo->WindowRatio(slo->spec.long_window_s, now);
    slo->short_burn = short_ratio / budget;
    slo->long_burn = long_ratio / budget;
    slo->error_ratio = long_ratio;
    bool above = slo->short_burn > slo->spec.burn_threshold &&
                 slo->long_burn > slo->spec.burn_threshold;

    AlertState next = slo->state;
    switch (slo->state) {
      case AlertState::kOk:
        if (above) {
          next = AlertState::kPending;
          slo->pending_since = now;
        }
        break;
      case AlertState::kPending:
        if (!above) {
          next = AlertState::kOk;
        } else if (std::chrono::duration<double>(now - slo->pending_since)
                       .count() >= slo->spec.pending_for_s) {
          next = AlertState::kFiring;
        }
        break;
      case AlertState::kFiring:
        if (!above) next = AlertState::kOk;
        break;
    }

    if (next != slo->state) {
      AlertTransition transition;
      transition.slo = slo->spec.name;
      transition.from = slo->state;
      transition.to = next;
      transition.unix_ms = unix_ms;
      transition.short_burn = slo->short_burn;
      transition.long_burn = slo->long_burn;
      transitions_.push_back(transition);
      while (transitions_.size() > kMaxTransitions) transitions_.pop_front();

      bool resolved = slo->state == AlertState::kFiring &&
                      next == AlertState::kOk;
      LogLevel level = next == AlertState::kFiring ? LogLevel::kWarn
                                                   : LogLevel::kInfo;
      Logger::Default()
          .Log(level, "slo",
               resolved ? "alert resolved" : "alert state changed")
          .Field("slo", slo->spec.name)
          .Field("from", AlertStateName(slo->state))
          .Field("to", AlertStateName(next))
          .Field("short_burn", slo->short_burn)
          .Field("long_burn", slo->long_burn);

      slo->state = next;
      slo->state_since_unix_ms = unix_ms;
    }
    if (slo->gauge != nullptr) {
      slo->gauge->Set(static_cast<int64_t>(slo->state));
    }
  }
}

std::vector<AlertStatus> SloEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AlertStatus> out;
  out.reserve(slos_.size());
  for (const auto& slo : slos_) {
    AlertStatus status;
    status.name = slo->spec.name;
    status.description = slo->spec.description;
    status.state = slo->state;
    status.objective = slo->spec.objective;
    status.burn_threshold = slo->spec.burn_threshold;
    status.short_window_s = slo->spec.short_window_s;
    status.long_window_s = slo->spec.long_window_s;
    status.short_burn = slo->short_burn;
    status.long_burn = slo->long_burn;
    status.error_ratio = slo->error_ratio;
    status.state_since_unix_ms = slo->state_since_unix_ms;
    status.samples = slo->points.size();
    out.push_back(std::move(status));
  }
  return out;
}

std::vector<AlertTransition> SloEngine::Transitions(size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AlertTransition> out;
  size_t n = std::min(limit, transitions_.size());
  out.reserve(n);
  for (auto it = transitions_.rbegin();
       it != transitions_.rend() && out.size() < n; ++it) {
    out.push_back(*it);
  }
  return out;
}

}  // namespace raptor::obs
