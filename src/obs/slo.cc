#include "obs/slo.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/history.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/resource.h"

namespace raptor::obs {

namespace {

constexpr size_t kMaxTransitions = 256;

/// The history series one SLO writes per evaluation.
constexpr std::string_view kGoodSeries = "raptor_slo_good";
constexpr std::string_view kBadSeries = "raptor_slo_bad";
constexpr std::string_view kRatioSeries = "raptor_slo_ratio";
constexpr std::string_view kShortBurnSeries = "raptor_slo_short_burn";
constexpr std::string_view kLongBurnSeries = "raptor_slo_long_burn";

/// hunt_latency_p99 tallies: good = hunts whose latency landed in a bucket
/// whose bound is within the target (the target snaps down to a bucket
/// bound), bad = the rest. Zeroes until the first hunt registers the
/// histogram.
SloSample HuntLatencySample(double target_ms) {
  SloSample sample;
  const Histogram* h = Registry::Default().FindHistogram("raptor_hunt_ms");
  if (h == nullptr) return sample;
  uint64_t good = 0;
  const std::vector<double>& bounds = h->bounds();
  for (size_t i = 0; i < bounds.size() && bounds[i] <= target_ms; ++i) {
    good += h->BucketCount(i);
  }
  uint64_t total = h->Count();
  sample.good = static_cast<double>(good);
  sample.bad = static_cast<double>(total - std::min(total, good));
  return sample;
}

SloSample HttpErrorSample() {
  Registry& registry = Registry::Default();
  double errors = static_cast<double>(
      registry.CounterFamilySum("raptor_http_errors_total"));
  double responses = static_cast<double>(
      registry.CounterFamilySum("raptor_http_responses_total"));
  SloSample sample;
  sample.bad = errors;
  sample.good = std::max(0.0, responses - errors);
  return sample;
}

SloSample DegradedHuntSample() {
  Registry& registry = Registry::Default();
  double degraded = static_cast<double>(
      registry.CounterValue("raptor_hunts_degraded_total"));
  double hunts =
      static_cast<double>(registry.CounterValue("raptor_hunts_total"));
  SloSample sample;
  sample.bad = degraded;
  sample.good = std::max(0.0, hunts - degraded);
  return sample;
}

/// memory_headroom tallies (kInstant): bad = sum of component peak bytes,
/// good = remaining budget. The per-sample ratio is budget utilization.
SloSample MemoryHeadroomSample(uint64_t budget_bytes) {
  double used = 0;
  ResourceTracker& tracker = ResourceTracker::Default();
  for (size_t i = 0; i < kNumComponents; ++i) {
    used += static_cast<double>(
        tracker.PeakBytes(static_cast<Component>(i)));
  }
  SloSample sample;
  sample.bad = used;
  sample.good = std::max(0.0, static_cast<double>(budget_bytes) - used);
  return sample;
}

}  // namespace

std::string_view AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kOk:
      return "ok";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
  }
  return "ok";
}

/// One installed SLO: its spec, history identity, and the state machine's
/// position. The rolling samples themselves live in MetricsHistory under
/// raptor_slo_*{slo=name}.
struct SloEngine::Runtime {
  SloSpec spec;
  LabelSet labels;  ///< {{"slo", spec.name}} — the history series identity.
  AlertState state = AlertState::kOk;
  uint64_t pending_since_ms = 0;
  uint64_t state_since_unix_ms = 0;
  double short_burn = 0;
  double long_burn = 0;
  double error_ratio = 0;
  uint64_t window_points = 0;  ///< History points inside the long window.
  Gauge* gauge = nullptr;

  /// Error ratio over the trailing window ending at `now_ms`, from the
  /// history store's rolling series.
  double WindowRatio(double window_s, uint64_t now_ms) const {
    uint64_t window_ms = static_cast<uint64_t>(window_s * 1000.0);
    uint64_t t0 = now_ms > window_ms ? now_ms - window_ms : 0;
    MetricsHistory& history = MetricsHistory::Default();
    if (spec.kind == SloKind::kCumulative) {
      // Counter increases over the window. A single point has no delta:
      // the window saw no events yet.
      auto bad = history.Window(kBadSeries, labels, t0, now_ms);
      auto good = history.Window(kGoodSeries, labels, t0, now_ms);
      if (!bad || !good || bad->points < 2) return 0;
      double total = bad->increase + good->increase;
      if (total <= 0) return 0;
      return std::max(0.0, bad->increase) / total;
    }
    // kInstant: average of the recorded per-sample ratios.
    auto ratio = history.Window(kRatioSeries, labels, t0, now_ms);
    return ratio ? ratio->avg : 0;
  }
};

SloEngine& SloEngine::Default() {
  static SloEngine* engine = new SloEngine();  // leaked: outlives everything
  return *engine;
}

void SloEngine::Configure(const SloOptions& options) {
  Stop();
  std::lock_guard<std::mutex> lock(mu_);
  RemoveHistorySeriesLocked();
  options_ = options;
  slos_.clear();
  transitions_.clear();
  last_eval_ms_ = 0;
  IncidentJournal::Default().Configure(options_.incidents);
  if (options_.enabled) InstallDefaultCatalogLocked();
}

SloOptions SloEngine::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

void SloEngine::RemoveHistorySeriesLocked() {
  // Drop the previous catalog's rolling series so a reconfigured engine
  // (tests reuse slo names against a fresh ManualClock) starts clean.
  MetricsHistory& history = MetricsHistory::Default();
  for (const auto& slo : slos_) {
    for (std::string_view series : {kGoodSeries, kBadSeries, kRatioSeries,
                                    kShortBurnSeries, kLongBurnSeries}) {
      history.RemoveSeries(series, slo->labels);
    }
  }
}

void SloEngine::InstallDefaultCatalogLocked() {
  const SloOptions& o = options_;
  // Shared state-machine tuning applied to every catalog entry.
  auto tune = [&o](SloSpec* spec) {
    spec->short_window_s = o.short_window_s;
    spec->long_window_s = o.long_window_s;
    spec->burn_threshold = o.burn_threshold;
    spec->pending_for_s = o.pending_for_s;
  };

  SloSpec hunt;
  hunt.name = "hunt_latency_p99";
  hunt.description = "Hunts must finish within the p99 latency target";
  hunt.kind = SloKind::kCumulative;
  hunt.objective = o.hunt_latency_objective;
  hunt.history_metric = "raptor_hunt_ms";
  double target_ms = o.hunt_p99_target_ms;
  hunt.sample = [target_ms] { return HuntLatencySample(target_ms); };
  tune(&hunt);
  AddSloLocked(hunt);

  SloSpec http;
  http.name = "http_error_rate";
  http.description = "HTTP responses must not be errors (408/413/5xx)";
  http.kind = SloKind::kCumulative;
  http.objective = o.http_error_objective;
  http.history_metric = "raptor_http_errors_total";
  http.sample = HttpErrorSample;
  tune(&http);
  AddSloLocked(http);

  SloSpec degraded;
  degraded.name = "degraded_hunt_fraction";
  degraded.description = "Hunts must complete without degraded fallbacks";
  degraded.kind = SloKind::kCumulative;
  degraded.objective = o.degraded_hunt_objective;
  degraded.history_metric = "raptor_hunts_degraded_total";
  degraded.sample = DegradedHuntSample;
  tune(&degraded);
  AddSloLocked(degraded);

  SloSpec memory;
  memory.name = "memory_headroom";
  memory.description =
      "Component peak memory must stay within the budget's burn threshold";
  memory.kind = SloKind::kInstant;
  memory.objective = 0;  // burn == budget utilization
  memory.history_metric = "raptor_mem_live_bytes";
  uint64_t budget = o.memory_budget_bytes;
  memory.sample = [budget] { return MemoryHeadroomSample(budget); };
  tune(&memory);
  memory.burn_threshold = o.memory_burn_threshold;
  AddSloLocked(memory);
}

void SloEngine::AddSlo(const SloSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  AddSloLocked(spec);
}

void SloEngine::AddSloLocked(const SloSpec& spec) {
  auto runtime = std::make_unique<Runtime>();
  runtime->spec = spec;
  runtime->labels = {{"slo", spec.name}};
  runtime->state_since_unix_ms = ClockOrSystem(options_.clock).NowUnixMs();
  runtime->gauge = Registry::Default().GetGauge(
      "raptor_alert_state",
      "SLO alert state machine position (0=ok, 1=pending, 2=firing)",
      {{"slo", spec.name}});
  runtime->gauge->Set(static_cast<int64_t>(AlertState::kOk));
  slos_.push_back(std::move(runtime));
}

void SloEngine::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  evaluator_ = std::thread([this] { EvaluatorLoop(); });
}

void SloEngine::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  evaluator_.join();
}

bool SloEngine::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void SloEngine::EvaluatorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    uint64_t now_ms = ClockOrSystem(options_.clock).NowUnixMs();
    std::vector<PendingIncident> fired;
    if (now_ms > last_eval_ms_) {
      last_eval_ms_ = now_ms;
      EvaluateLocked(now_ms, &fired);
    }
    if (!fired.empty()) {
      lock.unlock();
      RecordIncidents(std::move(fired));
      lock.lock();
    }
    auto interval = std::chrono::duration<double, std::milli>(
        std::max(1.0, options_.eval_interval_ms));
    cv_.wait_for(lock, interval, [this] { return !running_; });
  }
}

void SloEngine::EvaluateNow() {
  std::vector<PendingIncident> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t now_ms = ClockOrSystem(options_.clock).NowUnixMs();
    // Idempotence: a timestamp already evaluated (a concurrent poll, or a
    // poll racing the background evaluator) must not double-step the burn
    // windows.
    if (now_ms <= last_eval_ms_) return;
    last_eval_ms_ = now_ms;
    EvaluateLocked(now_ms, &fired);
  }
  RecordIncidents(std::move(fired));
}

void SloEngine::EvaluateLocked(uint64_t now_ms,
                               std::vector<PendingIncident>* fired) {
  MetricsHistory& history = MetricsHistory::Default();
  for (const auto& slo : slos_) {
    if (!slo->spec.sample) continue;
    SloSample sample = slo->spec.sample();

    // Record the tallies into the rolling history; the window queries
    // below read them back. Cumulative tallies are counters (windows use
    // increases), instant tallies are gauges.
    SeriesKind tally_kind = slo->spec.kind == SloKind::kCumulative
                                ? SeriesKind::kCounter
                                : SeriesKind::kGauge;
    history.Append(kGoodSeries, slo->labels, tally_kind, now_ms, sample.good);
    history.Append(kBadSeries, slo->labels, tally_kind, now_ms, sample.bad);
    if (slo->spec.kind == SloKind::kInstant) {
      double total = sample.good + sample.bad;
      double ratio = total > 0 ? sample.bad / total : 0;
      history.Append(kRatioSeries, slo->labels, SeriesKind::kGauge, now_ms,
                     ratio);
    }

    double budget = std::max(1e-9, 1.0 - slo->spec.objective);
    double short_ratio = slo->WindowRatio(slo->spec.short_window_s, now_ms);
    double long_ratio = slo->WindowRatio(slo->spec.long_window_s, now_ms);
    slo->short_burn = short_ratio / budget;
    slo->long_burn = long_ratio / budget;
    slo->error_ratio = long_ratio;
    history.Append(kShortBurnSeries, slo->labels, SeriesKind::kGauge, now_ms,
                   slo->short_burn);
    history.Append(kLongBurnSeries, slo->labels, SeriesKind::kGauge, now_ms,
                   slo->long_burn);
    {
      uint64_t window_ms =
          static_cast<uint64_t>(slo->spec.long_window_s * 1000.0);
      uint64_t t0 = now_ms > window_ms ? now_ms - window_ms : 0;
      auto stats =
          history.Window(slo->spec.kind == SloKind::kCumulative ? kBadSeries
                                                                : kRatioSeries,
                         slo->labels, t0, now_ms);
      slo->window_points = stats ? stats->points : 0;
    }
    bool above = slo->short_burn > slo->spec.burn_threshold &&
                 slo->long_burn > slo->spec.burn_threshold;

    AlertState next = slo->state;
    switch (slo->state) {
      case AlertState::kOk:
        if (above) {
          next = AlertState::kPending;
          slo->pending_since_ms = now_ms;
        }
        break;
      case AlertState::kPending:
        if (!above) {
          next = AlertState::kOk;
        } else if (static_cast<double>(now_ms - slo->pending_since_ms) /
                       1000.0 >=
                   slo->spec.pending_for_s) {
          next = AlertState::kFiring;
        }
        break;
      case AlertState::kFiring:
        if (!above) next = AlertState::kOk;
        break;
    }

    if (next != slo->state) {
      AlertTransition transition;
      transition.slo = slo->spec.name;
      transition.from = slo->state;
      transition.to = next;
      transition.unix_ms = now_ms;
      transition.short_burn = slo->short_burn;
      transition.long_burn = slo->long_burn;
      transitions_.push_back(transition);
      while (transitions_.size() > kMaxTransitions) transitions_.pop_front();

      bool resolved = slo->state == AlertState::kFiring &&
                      next == AlertState::kOk;
      LogLevel level = next == AlertState::kFiring ? LogLevel::kWarn
                                                   : LogLevel::kInfo;
      Logger::Default()
          .Log(level, "slo",
               resolved ? "alert resolved" : "alert state changed")
          .Field("slo", slo->spec.name)
          .Field("from", AlertStateName(slo->state))
          .Field("to", AlertStateName(next))
          .Field("short_burn", slo->short_burn)
          .Field("long_burn", slo->long_burn);

      if (next == AlertState::kFiring && fired != nullptr) {
        PendingIncident incident;
        incident.slo = slo->spec.name;
        incident.metric = slo->spec.history_metric;
        incident.fired_at_ms = now_ms;
        incident.short_burn = slo->short_burn;
        incident.long_burn = slo->long_burn;
        incident.burn_threshold = slo->spec.burn_threshold;
        fired->push_back(std::move(incident));
      }
      if (resolved) {
        IncidentJournal::Default().MarkResolved(slo->spec.name, now_ms);
      }

      slo->state = next;
      slo->state_since_unix_ms = now_ms;
    }
    if (slo->gauge != nullptr) {
      slo->gauge->Set(static_cast<int64_t>(slo->state));
    }
  }
}

void SloEngine::RecordIncidents(std::vector<PendingIncident> fired) {
  if (fired.empty()) return;
  IncidentJournal& journal = IncidentJournal::Default();
  MetricsHistory& history = MetricsHistory::Default();
  uint64_t window_ms =
      static_cast<uint64_t>(journal.options().window_s * 1000.0);
  for (PendingIncident& pending : fired) {
    Incident incident;
    incident.slo = pending.slo;
    incident.metric = pending.metric;
    incident.fired_at_ms = pending.fired_at_ms;
    incident.short_burn = pending.short_burn;
    incident.long_burn = pending.long_burn;
    incident.burn_threshold = pending.burn_threshold;
    uint64_t t0 = pending.fired_at_ms > window_ms
                      ? pending.fired_at_ms - window_ms
                      : 0;
    if (!pending.metric.empty()) {
      incident.windows =
          history.WindowDump(pending.metric, t0, pending.fired_at_ms);
    }
    // Always freeze the SLO's own burn trajectory (its series only).
    for (std::string_view series : {kShortBurnSeries, kLongBurnSeries}) {
      for (SeriesWindow& window :
           history.WindowDump(series, t0, pending.fired_at_ms)) {
        bool ours = false;
        for (const auto& [key, value] : window.labels) {
          if (key == "slo" && value == pending.slo) ours = true;
        }
        if (ours) incident.windows.push_back(std::move(window));
      }
    }
    incident.bundle_json = journal.BuildBundle();
    journal.Record(std::move(incident));
  }
}

std::vector<AlertStatus> SloEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AlertStatus> out;
  out.reserve(slos_.size());
  for (const auto& slo : slos_) {
    AlertStatus status;
    status.name = slo->spec.name;
    status.description = slo->spec.description;
    status.state = slo->state;
    status.objective = slo->spec.objective;
    status.burn_threshold = slo->spec.burn_threshold;
    status.short_window_s = slo->spec.short_window_s;
    status.long_window_s = slo->spec.long_window_s;
    status.short_burn = slo->short_burn;
    status.long_burn = slo->long_burn;
    status.error_ratio = slo->error_ratio;
    status.state_since_unix_ms = slo->state_since_unix_ms;
    status.samples = slo->window_points;
    out.push_back(std::move(status));
  }
  return out;
}

std::vector<AlertTransition> SloEngine::Transitions(size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AlertTransition> out;
  size_t n = std::min(limit, transitions_.size());
  out.reserve(n);
  for (auto it = transitions_.rbegin();
       it != transitions_.rend() && out.size() < n; ++it) {
    out.push_back(*it);
  }
  return out;
}

}  // namespace raptor::obs
