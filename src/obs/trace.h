// Lightweight in-process tracing: RAII spans with parent/child nesting,
// per-span attributes and annotations, and a bounded ring of recently
// completed traces (served at GET /api/traces).
//
// Design for near-zero idle cost: a trace must be explicitly begun
// (Tracer::BeginTrace) before any span records anything. Instrumentation
// sites call Tracer::StartSpan unconditionally; when no trace is active on
// the calling thread the returned Span is inert and the call costs one
// thread-local read. Whether BeginTrace actually starts recording is
// decided by the tracer's `enabled` flag (flipped when a sink such as the
// HTTP API attaches) or by the caller forcing it (the ?profile=1 path).
//
// Traces are thread-local: one thread records one trace at a time, which
// matches ThreatRaptor's single-threaded execution model. A nested
// BeginTrace (e.g. QueryEngine::Execute inside a Hunt) opens a child span
// instead of a new trace; its TraceScope::Finish() still returns the
// finished subtree, which is how per-query profiles are carved out of
// per-hunt traces.
//
// Span names form the stage taxonomy documented in docs/OBSERVABILITY.md;
// obs/profile.h aggregates a finished trace into per-stage timings.
//
// Dependency-free (standard library only); see metrics.h for why.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace raptor::obs {

/// \brief One recorded span.
struct SpanData {
  uint32_t id = 0;      ///< Index into Trace::spans.
  uint32_t parent = 0;  ///< Parent span id; the root span is its own parent.
  std::string name;
  uint64_t start_ns = 0;  ///< steady_clock, relative to the trace start.
  uint64_t end_ns = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<std::string> annotations;

  double DurationMs() const {
    return static_cast<double>(end_ns - start_ns) / 1e6;
  }
};

/// \brief One completed trace; spans[0] is the root.
struct Trace {
  uint64_t id = 0;
  std::string name;
  uint64_t started_unix_ms = 0;  ///< Wall clock, for display.
  std::vector<SpanData> spans;

  double TotalMs() const {
    return spans.empty() ? 0.0 : spans.front().DurationMs();
  }
};

struct ActiveTrace;  // internal (trace.cc)
class Tracer;

/// \brief RAII guard for one span. Inert (all methods no-ops) when no trace
/// was active at StartSpan time. Movable, not copyable; ends at destruction
/// or explicit End().
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  bool active() const { return trace_ != nullptr; }

  /// Attaches a key/value attribute. Call sites formatting expensive values
  /// should guard on active() first.
  void SetAttr(std::string_view key, std::string_view value);
  void SetAttr(std::string_view key, int64_t value);
  void SetAttr(std::string_view key, double value);
  void SetAttr(std::string_view key, bool value);

  /// Appends a free-form event note (truncation reasons, budget expiries).
  void Annotate(std::string_view note);

  /// Records the end time and pops the span off the nesting stack.
  /// Idempotent.
  void End();

 private:
  friend class Tracer;
  friend class TraceScope;
  Span(ActiveTrace* trace, uint32_t index) : trace_(trace), index_(index) {}

  ActiveTrace* trace_ = nullptr;
  uint32_t index_ = 0;
};

/// \brief RAII guard for one trace (or, when nested under an already-active
/// trace, for a subtree of it). Finish() — or destruction — completes the
/// root span; a completed top-level trace is published to the tracer ring
/// when the tracer is enabled.
class TraceScope {
 public:
  TraceScope() = default;
  TraceScope(TraceScope&& other) noexcept { *this = std::move(other); }
  TraceScope& operator=(TraceScope&& other) noexcept;
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() { Finish(); }

  /// True when this scope is actually recording.
  bool active() const { return trace_ != nullptr; }

  /// The scope's root span, for attributes/annotations. Inert when the
  /// scope is inactive.
  Span& root() { return root_span_; }

  /// Ends the scope and returns what it recorded: the whole trace for a
  /// top-level scope, the finished subtree for a nested one, nullopt when
  /// inactive (or already finished). Publication to the ring (top-level,
  /// tracer enabled) happens here.
  std::optional<Trace> Finish();

 private:
  friend class Tracer;

  Tracer* tracer_ = nullptr;
  ActiveTrace* trace_ = nullptr;  ///< Owned when owns_ is true.
  bool owns_ = false;             ///< Top-level (true) vs nested subtree.
  Span root_span_;
};

/// \brief Hand-off of an active trace across threads (the thread pool's
/// ParallelFor uses this so worker spans and log records stay correlated
/// with the caller's trace).
///
/// Protocol: the thread that owns the trace calls Capture() before fanning
/// out; each worker task holds a Scope from Adopt() while it runs (worker
/// StartSpan/CurrentTraceId then record against a private subtree carrying
/// the captured trace id); after joining all workers the owning thread
/// calls Merge() to splice the collected subtrees into the parent trace,
/// time-shifted onto its clock base. Inactive (all methods no-ops) when no
/// trace was active at capture time, so the uninstrumented path costs one
/// thread-local read.
class TraceContext {
 public:
  TraceContext() = default;

  /// Captures the calling thread's active trace; inactive context when none.
  static TraceContext Capture();

  bool active() const { return state_ != nullptr; }

  /// Id of the captured trace (0 when inactive).
  uint64_t trace_id() const;

  /// \brief RAII guard for one adopted worker task.
  class Scope {
   public:
    Scope() = default;
    Scope(Scope&& other) noexcept { *this = std::move(other); }
    Scope& operator=(Scope&& other) noexcept;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { Release(); }

   private:
    friend class TraceContext;
    void Release();

    const TraceContext* context_ = nullptr;
    ActiveTrace* adopted_ = nullptr;
  };

  /// Worker-side: installs the captured trace on the calling thread for the
  /// scope's lifetime, recording under a subtree root named `task_name`.
  /// No-op when inactive, or when called on the capturing thread itself
  /// (its spans already nest directly).
  Scope Adopt(std::string_view task_name) const;

  /// Caller-side, after every adopted scope has been released: splices the
  /// collected worker subtrees into the parent trace under its currently
  /// open span. Must run on the capturing thread.
  void Merge() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// \brief The process-wide tracer.
class Tracer {
 public:
  static Tracer& Default();

  /// Whether BeginTrace records by default and completed traces are kept in
  /// the ring. Flipped on when a sink attaches (the HTTP API does this at
  /// registration).
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Ring capacity for completed traces (default 64; keeps memory bounded).
  void set_capacity(size_t capacity);

  /// Begins a trace on this thread. Returns an inactive scope when the
  /// tracer is disabled and `force` is false. When a trace is already
  /// active on this thread, opens a child span instead (see TraceScope).
  TraceScope BeginTrace(std::string_view name, bool force = false);

  /// Opens a child span of this thread's active trace; inert Span when no
  /// trace is active.
  Span StartSpan(std::string_view name);

  /// True when the calling thread is inside an active trace.
  static bool TraceActive();

  /// Id of the trace active on the calling thread, 0 when none. This is
  /// how log records (obs/log.h) get their trace correlation.
  static uint64_t CurrentTraceId();

  /// Most recent completed traces, newest first.
  std::vector<Trace> RecentTraces() const;

  /// One completed trace by id.
  std::optional<Trace> FindTrace(uint64_t id) const;

  /// Drops all completed traces (test support).
  void Clear();

 private:
  friend class TraceScope;
  void Publish(Trace&& trace);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  size_t capacity_ = 64;
  std::deque<Trace> ring_;
};

}  // namespace raptor::obs
