// Resource accounting: per-subsystem byte counters with live/peak
// watermarks, cheap enough to sit on storage hot paths.
//
// Components charge bytes in batches (after a load, a sync, a query — never
// per row), so the counters are a handful of relaxed atomics updated a few
// times per operation. `MemoryScope` is the RAII form for transient
// allocations (e.g. a query's intermediate result sets): everything charged
// through the scope is released when it dies, leaving only the peak
// watermark behind.
//
// Values surface as `raptor_mem_live_bytes{component=...}` and
// `raptor_mem_peak_bytes{component=...}` gauges after `Publish()`, which
// the server calls before every metrics/stats render.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace raptor::obs {

/// Subsystems whose memory footprint is tracked separately.
enum class Component : uint8_t {
  kRelational = 0,  ///< Relational tables (rows + indexes).
  kGraph,           ///< Graph adjacency (edge list + out/in lists).
  kIngest,          ///< Audit ingestion buffers (entities + events).
  kEngine,          ///< Query-engine intermediate result sets.
  kStats,           ///< Data-statistics sketches (NDV, heavy hitters, ...).
  kHistory,         ///< Metrics time-series history (retention tiers).
};

inline constexpr size_t kNumComponents = 6;

/// Stable label value for a component ("relational", "graph", ...).
std::string_view ComponentName(Component component);

/// Process-wide byte accounting. All methods are thread-safe; charges are
/// relaxed atomics (no ordering is implied between components).
class ResourceTracker {
 public:
  /// The process-wide tracker used by all built-in instrumentation.
  static ResourceTracker& Default();

  /// Adds `bytes` (negative to release) to the component's live counter
  /// and advances its peak watermark.
  void Charge(Component component, int64_t bytes);

  int64_t LiveBytes(Component component) const;
  int64_t PeakBytes(Component component) const;

  /// Refreshes the raptor_mem_live_bytes / raptor_mem_peak_bytes gauges in
  /// Registry::Default() from the current counters.
  void Publish() const;

  /// Test support: resets every live counter and peak watermark to zero.
  void Reset();

 private:
  struct Slot {
    std::atomic<int64_t> live{0};
    std::atomic<int64_t> peak{0};
  };
  Slot slots_[kNumComponents];
};

/// RAII charge against one component: everything charged through the scope
/// is released on destruction. Not thread-safe (one owner), but the
/// underlying tracker is.
class MemoryScope {
 public:
  explicit MemoryScope(Component component,
                       ResourceTracker* tracker = nullptr);
  ~MemoryScope();

  MemoryScope(const MemoryScope&) = delete;
  MemoryScope& operator=(const MemoryScope&) = delete;

  /// Charges `bytes` more to the component (released at scope exit).
  void Charge(int64_t bytes);

  /// Total bytes currently charged through this scope.
  int64_t charged() const { return charged_; }

 private:
  ResourceTracker* tracker_;
  Component component_;
  int64_t charged_ = 0;
};

}  // namespace raptor::obs
