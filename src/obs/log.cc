#include "obs/log.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace raptor::obs {

namespace {

uint64_t UnixMillisNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

Counter* RecordsCounter(std::string_view subsystem, LogLevel level) {
  return Registry::Default().GetCounter(
      "raptor_log_records_total", "Log records committed to the ring",
      {{"subsystem", std::string(subsystem)},
       {"level", std::string(LogLevelName(level))}});
}

Counter* DroppedCounter(std::string_view subsystem, LogLevel level,
                        std::string_view reason) {
  return Registry::Default().GetCounter(
      "raptor_log_dropped_total", "Log records dropped before serving",
      {{"subsystem", std::string(subsystem)},
       {"level", std::string(LogLevelName(level))},
       {"reason", std::string(reason)}});
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

std::optional<LogLevel> ParseLogLevel(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

// --- LogSampler. ---

LogSampler::LogSampler(double burst, double refill_per_sec)
    : tokens_(burst),
      burst_(burst),
      refill_per_sec_(refill_per_sec),
      last_refill_(std::chrono::steady_clock::now()) {}

bool LogSampler::Admit() {
  std::lock_guard<std::mutex> lock(mu_);
  auto now = std::chrono::steady_clock::now();
  double elapsed_s =
      std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * refill_per_sec_);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  pending_suppressed_.fetch_add(1, std::memory_order_relaxed);
  suppressed_total_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

uint64_t LogSampler::TakeSuppressed() {
  return pending_suppressed_.exchange(0, std::memory_order_relaxed);
}

// --- LogEvent. ---

LogEvent& LogEvent::operator=(LogEvent&& other) noexcept {
  if (this != &other) {
    Commit();
    logger_ = other.logger_;
    record_ = std::move(other.record_);
    other.logger_ = nullptr;
  }
  return *this;
}

LogEvent& LogEvent::Field(std::string_view key, std::string_view value) {
  if (record_ != nullptr) {
    record_->fields.emplace_back(std::string(key), std::string(value));
  }
  return *this;
}

LogEvent& LogEvent::Field(std::string_view key, int64_t value) {
  if (record_ != nullptr) Field(key, std::to_string(value));
  return *this;
}

LogEvent& LogEvent::Field(std::string_view key, uint64_t value) {
  if (record_ != nullptr) Field(key, std::to_string(value));
  return *this;
}

LogEvent& LogEvent::Field(std::string_view key, double value) {
  if (record_ != nullptr) Field(key, FormatDouble(value));
  return *this;
}

LogEvent& LogEvent::Field(std::string_view key, bool value) {
  if (record_ != nullptr) {
    Field(key, std::string_view(value ? "true" : "false"));
  }
  return *this;
}

void LogEvent::Commit() {
  if (record_ == nullptr || logger_ == nullptr) return;
  logger_->Commit(std::move(record_));
  logger_ = nullptr;
}

// --- Logger. ---

Logger& Logger::Default() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (ring_.size() > capacity_) ring_.pop_front();
}

size_t Logger::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

LogEvent Logger::Log(LogLevel level, std::string_view subsystem,
                     std::string_view message) {
  if (!enabled() || level < min_level()) return LogEvent();
  auto record = std::make_unique<LogRecord>();
  record->level = level;
  record->subsystem = std::string(subsystem);
  record->message = std::string(message);
  record->trace_id = Tracer::CurrentTraceId();
  return LogEvent(this, std::move(record));
}

LogEvent Logger::Sampled(LogLevel level, std::string_view subsystem,
                         std::string_view message, LogSampler* sampler) {
  if (!enabled() || level < min_level()) return LogEvent();
  if (sampler != nullptr && !sampler->Admit()) {
    DroppedCounter(subsystem, level, "sampled")->Increment();
    return LogEvent();
  }
  LogEvent event = Log(level, subsystem, message);
  if (event.active() && sampler != nullptr) {
    event.record_->suppressed = sampler->TakeSuppressed();
    if (event.record_->suppressed > 0) {
      event.Field("suppressed", event.record_->suppressed);
    }
  }
  return event;
}

void Logger::Commit(std::unique_ptr<LogRecord> record) {
  record->seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  record->unix_ms = UnixMillisNow();
  RecordsCounter(record->subsystem, record->level)->Increment();
  committed_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(*record));
  while (ring_.size() > capacity_) {
    const LogRecord& evicted = ring_.front();
    DroppedCounter(evicted.subsystem, evicted.level, "ring_evicted")
        ->Increment();
    ring_.pop_front();
  }
}

std::vector<LogRecord> Logger::Snapshot(const LogFilter& filter) const {
  std::vector<LogRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const LogRecord& record : ring_) {
      if (filter.min_level.has_value() && record.level < *filter.min_level) {
        continue;
      }
      if (!filter.subsystem.empty() && record.subsystem != filter.subsystem) {
        continue;
      }
      if (filter.trace_id != 0 && record.trace_id != filter.trace_id) {
        continue;
      }
      out.push_back(record);
    }
  }
  if (filter.limit > 0 && out.size() > filter.limit) {
    out.erase(out.begin(),
              out.end() - static_cast<ptrdiff_t>(filter.limit));
  }
  return out;
}

void Logger::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

}  // namespace raptor::obs
