// Process-wide metrics registry (the measurement substrate DESIGN.md's
// "Observability" section describes).
//
// Three instrument kinds, all safe for concurrent updates:
//   Counter    monotonically increasing uint64 (relaxed atomic add)
//   Gauge      settable int64 (relaxed atomic store)
//   Histogram  fixed-bucket distribution of doubles (one relaxed add per
//              observation plus a CAS loop for the running sum)
//
// Instruments are registered once (mutex-protected map insert) and updated
// through stable pointers, so hot paths cache the pointer in a
// function-local static and pay only the atomic op per event or batch:
//
//   static obs::Counter* rows = obs::Registry::Default().GetCounter(
//       "raptor_relational_rows_touched_total", "Rows touched by Select");
//   rows->Increment(batch_size);
//
// Registry::RenderPrometheus() serializes everything in the Prometheus
// text exposition format (served at GET /api/metrics). The full metric
// name catalog lives in docs/OBSERVABILITY.md.
//
// This library is dependency-free (standard library only): raptor_common
// links against it, so it must not link raptor_common back.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace raptor::obs {

/// Label key/value pairs, rendered in the given order.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonic counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Settable instantaneous value.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram with Prometheus `le` (less-or-equal)
/// semantics: an observation lands in the first bucket whose upper bound is
/// >= the value; values above every bound land in the implicit +Inf bucket.
class Histogram {
 public:
  /// `bounds` must be sorted ascending; they are the buckets' inclusive
  /// upper bounds.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) count; index bounds().size() is +Inf.
  uint64_t BucketCount(size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default request/stage latency buckets in milliseconds (0.05ms .. 10s).
std::vector<double> LatencyBucketsMs();

/// `count` buckets starting at `start`, each `factor` times the previous.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

/// \brief One instrument's values at snapshot time (Registry::Snapshot).
/// Counters and gauges fill `value`; histograms fill `buckets` (cumulative
/// counts per finite bound; the implicit +Inf bucket equals `count`),
/// `sum`, and `count`.
struct MetricSample {
  LabelSet labels;
  double value = 0;
  std::vector<std::pair<double, uint64_t>> buckets;
  double sum = 0;
  uint64_t count = 0;
};

/// \brief One metric family's snapshot: name, metadata, and every child.
struct FamilySnapshot {
  std::string name;
  std::string type;  ///< "counter", "gauge", or "histogram".
  std::string help;
  std::vector<MetricSample> samples;
};

/// \brief The process-wide instrument registry.
///
/// Instruments are identified by (family name, label set). The first
/// registration of a family fixes its type and help text; later lookups
/// with the same name return children of that family. A lookup whose type
/// conflicts with the registered family returns a detached dummy
/// instrument (updates go nowhere) rather than corrupting the exposition —
/// a misuse the tests assert on.
class Registry {
 public:
  /// The process-wide default registry used by all built-in
  /// instrumentation.
  static Registry& Default();

  Counter* GetCounter(std::string_view name, std::string_view help = "",
                      const LabelSet& labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help = "",
                  const LabelSet& labels = {});
  /// `bounds` applies on first registration of the family; later calls
  /// reuse the registered bounds. Empty bounds mean LatencyBucketsMs().
  Histogram* GetHistogram(std::string_view name, std::string_view help = "",
                          std::vector<double> bounds = {},
                          const LabelSet& labels = {});

  /// Value of a counter child, 0 when it was never registered. (Reads do
  /// not create instruments, unlike the Get* calls.)
  uint64_t CounterValue(std::string_view name,
                        const LabelSet& labels = {}) const;

  /// Value of a gauge child, 0 when it was never registered.
  int64_t GaugeValue(std::string_view name, const LabelSet& labels = {}) const;

  /// Sum over every child of a counter family (e.g. all `code` labels of
  /// raptor_http_errors_total). 0 when the family was never registered.
  uint64_t CounterFamilySum(std::string_view name) const;

  /// A histogram child for reading (Count/Sum/BucketCount/quantiles), or
  /// nullptr when it was never registered. Like the *Value readers, never
  /// creates instruments. The pointer stays valid for the registry's
  /// lifetime (instruments are never dropped outside Reset()).
  const Histogram* FindHistogram(std::string_view name,
                                 const LabelSet& labels = {}) const;

  /// Every child of a histogram family with its parsed labels, in label
  /// order; empty when the family was never registered.
  std::vector<std::pair<LabelSet, const Histogram*>> HistogramChildren(
      std::string_view name) const;

  /// Structured dump of every registered instrument, mirroring
  /// RenderPrometheus (same families, children, and values) for the JSON
  /// exposition.
  std::vector<FamilySnapshot> Snapshot() const;

  /// Prometheus text exposition of every registered instrument.
  std::string RenderPrometheus() const;

  /// Drops every instrument. Outstanding pointers dangle — test-only, for
  /// isolating registry state between test cases that use a private
  /// Registry instance.
  void Reset();

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Family {
    Type type = Type::kCounter;
    std::string help;
    std::vector<double> bounds;  // histograms only
    // Children keyed by their rendered label string ("" or {k="v",...}).
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Family* GetFamily(std::string_view name, std::string_view help, Type type);

  mutable std::mutex mu_;
  std::map<std::string, Family, std::less<>> families_;
};

/// Renders `labels` as `{k="v",...}` with Prometheus escaping (backslash,
/// double quote, and newline in values). Empty set renders as "".
std::string RenderLabels(const LabelSet& labels);

/// Inverse of RenderLabels: parses `{k="v",...}` (or "") back into a
/// LabelSet, undoing the escaping. Registry child keys are rendered label
/// strings; Snapshot/HistogramChildren use this to hand back structured
/// labels.
LabelSet ParseRenderedLabels(std::string_view rendered);

/// Quantile estimate (q in [0,1]) from a histogram's buckets: finds the
/// bucket holding the q-th observation and interpolates linearly inside
/// it. Observations beyond the last finite bound clamp to that bound (the
/// +Inf bucket has no width to interpolate in); 0 when the histogram is
/// empty. The first bucket interpolates from 0 (or from bounds[0] itself
/// when that bound is negative — the estimate never exceeds the bucket's
/// upper edge). Bucket-resolution accuracy — fine for SLO dashboards, not
/// for billing.
double HistogramQuantile(const Histogram& histogram, double q);

}  // namespace raptor::obs
