// SLO burn-rate alerting over the metrics registry.
//
// An SloSpec declares an objective ("99% of hunts finish under the p99
// target") plus a sampler closure that reads good/bad tallies — usually
// registry counters or histogram buckets. Every evaluation records the
// tallies into MetricsHistory (raptor_slo_good/raptor_slo_bad{slo}, plus
// raptor_slo_ratio for instant SLOs and the computed burn rates), and the
// *burn rate* is computed from true rolling-window queries over that
// history (short window for fast detection, long against flapping):
//
//   error_ratio = bad_delta / (good_delta + bad_delta)    over the window
//   burn        = error_ratio / (1 - objective)
//
// burn == 1 means errors arrive exactly at the rate the objective budgets
// for; burn > threshold on BOTH windows trips the alert state machine:
//
//   ok -> pending      both windows above threshold
//   pending -> firing  still above after `pending_for_s`
//   pending -> ok      dropped below before confirming
//   firing -> ok       dropped below (the transition log marks it resolved)
//
// Evaluation is idempotent per clock timestamp: concurrent /api/alerts
// polls and the background evaluator cannot double-step a burn window —
// a second evaluation within the same clock millisecond is a no-op.
//
// On pending→firing the engine captures an Incident (obs/incident.h): the
// burn rates at that instant, a frozen debug bundle, and the offending
// metric's history window (SloSpec::history_metric). firing→ok marks the
// incident resolved.
//
// Every evaluation publishes the state to raptor_alert_state{slo} (0=ok,
// 1=pending, 2=firing); every transition emits a structured log event
// (subsystem "slo") and lands in a bounded transition ring. GET /api/alerts
// serves the whole picture and /api/debug/bundle embeds it.
//
// Two sample kinds:
//   kCumulative  good/bad are monotonic totals (counters, histogram bucket
//                counts); window ratios come from counter increases.
//   kInstant     good/bad are instantaneous quantities (memory headroom);
//                window ratios average the per-sample ratios.
//
// The default catalog (installed by Configure from SloOptions) covers hunt
// p99 latency, HTTP error rate, degraded-hunt fraction, and memory
// headroom vs the ResourceTracker budget; docs/OBSERVABILITY.md documents
// each. Dependency-free (standard library + obs only).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/incident.h"

namespace raptor::obs {

class Gauge;

/// \brief One reading of an SLO's good/bad tallies (see SloKind).
struct SloSample {
  double good = 0;
  double bad = 0;
};

enum class SloKind {
  kCumulative,  ///< good/bad are monotonic totals; windows use deltas.
  kInstant,     ///< good/bad are instantaneous; windows average ratios.
};

enum class AlertState : int { kOk = 0, kPending = 1, kFiring = 2 };

/// Canonical lower-case state name ("ok", "pending", "firing").
std::string_view AlertStateName(AlertState state);

/// \brief A declarative SLO: objective, windows, and the sampler closure.
struct SloSpec {
  std::string name;         ///< Stable identifier (the `slo` label value).
  std::string description;  ///< One line for /api/alerts and docs.
  SloKind kind = SloKind::kCumulative;
  /// Fraction of events that must be good (0.99 = 1% error budget). An
  /// objective of 0 makes burn equal the raw error ratio (used with a
  /// fractional threshold for utilization-style SLOs).
  double objective = 0.99;
  double short_window_s = 60;
  double long_window_s = 300;
  /// Burn rate both windows must exceed to trip the alert.
  double burn_threshold = 1.0;
  /// Seconds the burn must persist before pending escalates to firing.
  double pending_for_s = 30;
  /// Metric family whose history window is frozen into the incident when
  /// this SLO fires (empty = only the SLO's own burn series).
  std::string history_metric;
  /// Reads the current tallies; called on every evaluation with the
  /// engine's lock held, so it must not call back into the engine.
  std::function<SloSample()> sample;
};

/// \brief Knobs for the default SLO catalog (ThreatRaptorOptions::slo).
struct SloOptions {
  /// Install the default catalog and let the API start the evaluator.
  bool enabled = true;
  double eval_interval_ms = 1000;

  // Shared state-machine tuning applied to every default spec.
  double short_window_s = 60;
  double long_window_s = 300;
  double burn_threshold = 1.0;
  double pending_for_s = 30;

  /// hunt_latency_p99: fraction of hunts that must finish within the
  /// target. The target snaps down to the nearest raptor_hunt_ms bucket
  /// bound (bucket-resolution accounting).
  double hunt_p99_target_ms = 250;
  double hunt_latency_objective = 0.99;
  /// http_error_rate: fraction of HTTP responses that must not be errors
  /// (raptor_http_errors_total over raptor_http_responses_total).
  double http_error_objective = 0.99;
  /// degraded_hunt_fraction: fraction of hunts that must complete clean.
  double degraded_hunt_objective = 0.95;
  /// memory_headroom: alert when the sum of ResourceTracker component
  /// peaks exceeds this fraction of the budget (kInstant; objective 0 so
  /// burn is utilization itself).
  uint64_t memory_budget_bytes = 4ull << 30;
  double memory_burn_threshold = 0.8;

  /// Incident-ring tuning, installed into IncidentJournal::Default() by
  /// Configure.
  IncidentJournalOptions incidents;

  /// Injectable time source shared with the history store; null = wall
  /// time. ThreatRaptor propagates HistoryOptions::clock here when unset.
  std::shared_ptr<Clock> clock;
};

/// \brief One state-machine transition, for /api/alerts and the bundle.
struct AlertTransition {
  std::string slo;
  AlertState from = AlertState::kOk;
  AlertState to = AlertState::kOk;
  uint64_t unix_ms = 0;
  double short_burn = 0;
  double long_burn = 0;
};

/// \brief An SLO's current standing (Snapshot output).
struct AlertStatus {
  std::string name;
  std::string description;
  AlertState state = AlertState::kOk;
  double objective = 0;
  double burn_threshold = 0;
  double short_window_s = 0;
  double long_window_s = 0;
  double short_burn = 0;
  double long_burn = 0;
  double error_ratio = 0;  ///< Long-window error ratio.
  uint64_t state_since_unix_ms = 0;
  uint64_t samples = 0;  ///< History points currently inside the long window.
};

/// \brief The process-wide SLO evaluator.
///
/// Configure installs the default catalog (no thread); Start — called by
/// RegisterThreatRaptorApi when SloOptions::enabled — runs the periodic
/// evaluator. EvaluateNow lets the API and tests advance the state machine
/// deterministically (stepping the injected clock between calls; a call
/// that lands on an already-evaluated timestamp is a no-op).
class SloEngine {
 public:
  static SloEngine& Default();

  /// Stops a running evaluator, drops all specs/history/transitions
  /// (including the specs' series in MetricsHistory), configures the
  /// incident journal, and installs the default catalog when
  /// `options.enabled` (gauges reset to ok). The ThreatRaptor constructor
  /// calls this.
  void Configure(const SloOptions& options);
  SloOptions options() const;

  /// Adds a custom spec (tests, deployments with bespoke SLOs).
  void AddSlo(const SloSpec& spec);

  void Start();
  void Stop();
  bool running() const;

  /// Samples every spec once at the clock's current time and advances the
  /// state machines. No-op when the current timestamp was already
  /// evaluated (idempotence against concurrent polls).
  void EvaluateNow();

  std::vector<AlertStatus> Snapshot() const;
  /// Newest-first transitions, at most `limit`.
  std::vector<AlertTransition> Transitions(size_t limit = 64) const;

 private:
  struct Runtime;
  /// An incident detected under the lock, recorded after unlocking (the
  /// bundle hook snapshots subsystems that take their own locks).
  struct PendingIncident {
    std::string slo;
    std::string metric;
    uint64_t fired_at_ms = 0;
    double short_burn = 0;
    double long_burn = 0;
    double burn_threshold = 0;
  };

  void InstallDefaultCatalogLocked();
  void AddSloLocked(const SloSpec& spec);
  void RemoveHistorySeriesLocked();
  void EvaluateLocked(uint64_t now_ms, std::vector<PendingIncident>* fired);
  void RecordIncidents(std::vector<PendingIncident> fired);
  void EvaluatorLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  SloOptions options_;
  std::vector<std::unique_ptr<Runtime>> slos_;
  std::deque<AlertTransition> transitions_;
  uint64_t last_eval_ms_ = 0;  ///< Idempotence: newest evaluated timestamp.
  bool running_ = false;
  std::thread evaluator_;
};

}  // namespace raptor::obs
