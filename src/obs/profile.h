// Per-operation stage profiles: a finished trace's span tree folded into
// flat per-stage wall-time totals.
//
// Stages are identified by the span-name path below the trace root, joined
// with '/': a hunt trace with spans hunt -> execute -> scan yields stages
// "execute" and "execute/scan". Grouping by path means repeated spans (one
// scan per pattern) aggregate into one stage with a count, and top-level
// stages partition the root's wall time — their sum is the total minus
// whatever the root spent between stages, which is what lets the API
// assert that per-stage times add up to the reported total.
//
// HuntReport::profile and engine::QueryResult::profile are Profiles built
// here; the server serializes them behind the ?profile=1 flag.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace raptor::obs {

/// \brief Aggregated wall time of one stage (one span-name path).
struct StageStat {
  std::string stage;   ///< Path below the root, e.g. "execute/scan".
  double ms = 0;       ///< Total wall time across all spans on this path.
  uint64_t count = 0;  ///< Number of spans aggregated.
};

/// \brief One operation's stage breakdown.
struct Profile {
  double total_ms = 0;           ///< The root span's wall time.
  std::vector<StageStat> stages;  ///< First-seen order; root excluded.

  bool empty() const { return total_ms == 0 && stages.empty(); }

  /// Sum of the top-level stages (paths without '/'): the instrumented
  /// share of total_ms.
  double TopLevelMs() const;
};

/// Folds `trace`'s span tree into a Profile (see file comment).
Profile AggregateProfile(const Trace& trace);

}  // namespace raptor::obs
