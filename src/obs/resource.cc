#include "obs/resource.h"

#include "obs/metrics.h"

namespace raptor::obs {

std::string_view ComponentName(Component component) {
  switch (component) {
    case Component::kRelational:
      return "relational";
    case Component::kGraph:
      return "graph";
    case Component::kIngest:
      return "ingest";
    case Component::kEngine:
      return "engine";
    case Component::kStats:
      return "stats";
    case Component::kHistory:
      return "history";
  }
  return "unknown";
}

ResourceTracker& ResourceTracker::Default() {
  static ResourceTracker* tracker = new ResourceTracker();
  return *tracker;
}

void ResourceTracker::Charge(Component component, int64_t bytes) {
  if (bytes == 0) return;
  Slot& slot = slots_[static_cast<size_t>(component)];
  int64_t now =
      slot.live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (bytes > 0) {
    int64_t peak = slot.peak.load(std::memory_order_relaxed);
    while (now > peak && !slot.peak.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
}

int64_t ResourceTracker::LiveBytes(Component component) const {
  return slots_[static_cast<size_t>(component)].live.load(
      std::memory_order_relaxed);
}

int64_t ResourceTracker::PeakBytes(Component component) const {
  return slots_[static_cast<size_t>(component)].peak.load(
      std::memory_order_relaxed);
}

void ResourceTracker::Publish() const {
  Registry& registry = Registry::Default();
  for (size_t i = 0; i < kNumComponents; ++i) {
    Component component = static_cast<Component>(i);
    LabelSet labels = {{"component", std::string(ComponentName(component))}};
    registry
        .GetGauge("raptor_mem_live_bytes",
                  "Bytes currently accounted to the component", labels)
        ->Set(LiveBytes(component));
    registry
        .GetGauge("raptor_mem_peak_bytes",
                  "High-water mark of bytes accounted to the component",
                  labels)
        ->Set(PeakBytes(component));
  }
}

void ResourceTracker::Reset() {
  for (Slot& slot : slots_) {
    slot.live.store(0, std::memory_order_relaxed);
    slot.peak.store(0, std::memory_order_relaxed);
  }
}

MemoryScope::MemoryScope(Component component, ResourceTracker* tracker)
    : tracker_(tracker ? tracker : &ResourceTracker::Default()),
      component_(component) {}

MemoryScope::~MemoryScope() {
  if (charged_ != 0) tracker_->Charge(component_, -charged_);
}

void MemoryScope::Charge(int64_t bytes) {
  if (bytes == 0) return;
  tracker_->Charge(component_, bytes);
  charged_ += bytes;
}

}  // namespace raptor::obs
