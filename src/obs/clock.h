// Injectable time source for the time-aware observability pieces (metrics
// history, SLO evaluation, incident capture).
//
// Production code uses SystemClock (wall time); tests inject ManualClock
// and step it explicitly, which makes retention-tier boundaries, burn-rate
// windows, and downsampling deterministic — the clock *is* the test input.
// Header-only and dependency-free (standard library only), like the rest
// of src/obs.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace raptor::obs {

/// \brief A source of unix-epoch milliseconds. Implementations must be
/// safe to call from any thread.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual uint64_t NowUnixMs() const = 0;
};

/// \brief Wall time (std::chrono::system_clock).
class SystemClock : public Clock {
 public:
  uint64_t NowUnixMs() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  }
};

/// \brief A clock tests advance by hand. Starts at `start_unix_ms` (a
/// plausible epoch by default so unix-timestamp fields look real).
class ManualClock : public Clock {
 public:
  explicit ManualClock(uint64_t start_unix_ms = 1'700'000'000'000ull)
      : now_ms_(start_unix_ms) {}

  uint64_t NowUnixMs() const override {
    return now_ms_.load(std::memory_order_relaxed);
  }

  void AdvanceMs(uint64_t delta_ms) {
    now_ms_.fetch_add(delta_ms, std::memory_order_relaxed);
  }
  void AdvanceSeconds(double s) {
    AdvanceMs(static_cast<uint64_t>(s * 1000.0));
  }
  void Set(uint64_t unix_ms) {
    now_ms_.store(unix_ms, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_ms_;
};

/// `clock` when set, else a shared SystemClock — the null-object pattern
/// every clock-carrying options struct uses.
inline const Clock& ClockOrSystem(const std::shared_ptr<Clock>& clock) {
  static const SystemClock* system_clock = new SystemClock();
  return clock ? *clock : static_cast<const Clock&>(*system_clock);
}

}  // namespace raptor::obs
