// Incident capture: a bounded journal of SLO firings with frozen context.
//
// When the SLO engine walks an alert pending→firing it records an Incident
// here: the burn rates at the moment of firing, a frozen debug bundle
// (built by a hook the API server installs — the obs library itself has no
// JSON dependency), and the offending metric's history window dumped from
// MetricsHistory. The journal is a ring (oldest incidents fall off) served
// at GET /api/incidents and embedded in the debug bundle's "incidents"
// section; firing→ok marks the incident resolved in place.
//
// Dependency-free (standard library + obs only), like the rest of src/obs.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/history.h"

namespace raptor::obs {

/// \brief One captured SLO firing, frozen at the moment of transition.
struct Incident {
  uint64_t id = 0;  ///< Monotonic, process-wide.
  std::string slo;  ///< SloSpec::name.
  uint64_t fired_at_ms = 0;
  uint64_t resolved_at_ms = 0;  ///< 0 while still firing.
  double short_burn = 0;
  double long_burn = 0;
  double burn_threshold = 0;
  /// The metric family whose history was frozen (SloSpec::history_metric).
  std::string metric;
  /// The offending metric's retained points around the firing, dumped from
  /// MetricsHistory at capture time.
  std::vector<SeriesWindow> windows;
  /// A frozen debug bundle (JSON text) built by the installed hook; empty
  /// when no hook is installed.
  std::string bundle_json;
};

/// \brief Knobs for the incident journal.
struct IncidentJournalOptions {
  size_t max_incidents = 16;  ///< Ring capacity; oldest evicted.
  /// How much history to freeze before the firing (and a small tail after
  /// is implicit: capture happens at firing time).
  double window_s = 300;
};

/// \brief The process-wide incident ring. All methods are thread-safe.
class IncidentJournal {
 public:
  /// Builds the frozen debug-bundle JSON for a new incident. Installed by
  /// the API server (which owns JSON rendering); called WITHOUT any obs
  /// lock held, so it may snapshot the registry, engine state, etc.
  using BundleHook = std::function<std::string()>;

  static IncidentJournal& Default();

  /// Installs options and clears retained incidents (the ThreatRaptor
  /// constructor path calls this via SloEngine::Configure).
  void Configure(const IncidentJournalOptions& options);
  IncidentJournalOptions options() const;

  void SetBundleHook(BundleHook hook);
  /// Runs the installed hook (or returns "" without one). Callers must not
  /// hold locks the hook's snapshots need.
  std::string BuildBundle() const;

  /// Appends an incident (assigning its id) and bumps
  /// raptor_incidents_total{slo}. Returns the assigned id.
  uint64_t Record(Incident incident);

  /// Marks the newest unresolved incident of `slo` resolved at `t_ms`.
  void MarkResolved(std::string_view slo, uint64_t t_ms);

  /// Newest-first copy; `limit` 0 means all retained.
  std::vector<Incident> Snapshot(size_t limit = 0) const;

  size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  IncidentJournalOptions options_;
  BundleHook hook_;
  std::deque<Incident> incidents_;  ///< Oldest first.
  uint64_t next_id_ = 1;
};

}  // namespace raptor::obs
