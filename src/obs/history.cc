#include "obs/history.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/resource.h"

namespace raptor::obs {

namespace {

/// Hard cap on output points per range query; wider asks are a client bug
/// (the tiers cannot hold more than ~86400 points per series anyway).
constexpr size_t kMaxRangePoints = 10000;

uint64_t MsFromSeconds(double s) {
  return static_cast<uint64_t>(std::max(0.0, s) * 1000.0);
}

/// Quantile with the exact interpolation semantics of
/// obs::HistogramQuantile, over a window's per-bucket (non-cumulative)
/// count deltas. `deltas` has one entry per finite bound plus the +Inf
/// bucket at the end.
double QuantileFromDeltas(const std::vector<double>& bounds,
                          const std::vector<uint64_t>& deltas, double q) {
  uint64_t count = 0;
  for (uint64_t d : deltas) count += d;
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bounds.size(); ++i) {
    uint64_t in_bucket = deltas[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      double lower = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
      double fraction = (target - static_cast<double>(cumulative)) /
                        static_cast<double>(in_bucket);
      return lower + (bounds[i] - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? 0 : bounds.back();
}

}  // namespace

std::string_view SeriesKindName(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounter:
      return "counter";
    case SeriesKind::kGauge:
      return "gauge";
    case SeriesKind::kHistogram:
      return "histogram";
  }
  return "gauge";
}

std::optional<RangeAgg> ParseRangeAgg(std::string_view name) {
  if (name == "rate") return RangeAgg::kRate;
  if (name == "avg") return RangeAgg::kAvg;
  if (name == "min") return RangeAgg::kMin;
  if (name == "max") return RangeAgg::kMax;
  if (name == "last") return RangeAgg::kLast;
  if (name == "p50") return RangeAgg::kP50;
  if (name == "p99") return RangeAgg::kP99;
  return std::nullopt;
}

std::string_view RangeAggName(RangeAgg agg) {
  switch (agg) {
    case RangeAgg::kRate:
      return "rate";
    case RangeAgg::kAvg:
      return "avg";
    case RangeAgg::kMin:
      return "min";
    case RangeAgg::kMax:
      return "max";
    case RangeAgg::kLast:
      return "last";
    case RangeAgg::kP50:
      return "p50";
    case RangeAgg::kP99:
      return "p99";
  }
  return "avg";
}

/// One series: its identity plus one ring per retention tier and the
/// fold-down accumulators between adjacent tiers.
struct MetricsHistory::Series {
  std::string name;
  LabelSet labels;
  SeriesKind kind = SeriesKind::kGauge;
  std::vector<double> bounds;  ///< Histograms only; fixed at creation.

  /// Scalar point: 32-bit time offset from the ring base + the value
  /// (counters: cumulative; gauges: the reading; coarse counter tiers:
  /// last-in-bucket).
  struct ScalarPoint {
    uint32_t dt_ms = 0;
    double value = 0;
  };
  /// Gauge fold-down point (tiers > 0): the bucket's last/min/max plus
  /// sum/count so averages merge exactly.
  struct GaugePoint {
    uint32_t dt_ms = 0;
    double last = 0;
    double min = 0;
    double max = 0;
    double sum = 0;
    uint32_t count = 0;
  };
  /// Histogram point, delta-encoded: per-bucket count increments vs the
  /// previous point (cumulative counts are rebuilt front-to-back from
  /// `hist_base`). `sum` stays absolute — accumulating double deltas
  /// across rebases would drift.
  struct HistPoint {
    uint32_t dt_ms = 0;
    std::vector<uint32_t> dbuckets;  ///< One per finite bound, then +Inf.
    double sum = 0;
  };

  struct Ring {
    uint64_t base_t_ms = 0;  ///< dt_ms offsets are relative to this.
    std::deque<ScalarPoint> scalar;
    std::deque<GaugePoint> gauge;
    std::deque<HistPoint> hist;
    /// Cumulative counts (finite bounds + +Inf) just before `hist.front()`.
    std::vector<uint64_t> hist_base;

    bool empty() const {
      return scalar.empty() && gauge.empty() && hist.empty();
    }
    size_t size() const {
      return scalar.size() + gauge.size() + hist.size();
    }
    uint64_t NewestMs() const {
      if (!scalar.empty()) return base_t_ms + scalar.back().dt_ms;
      if (!gauge.empty()) return base_t_ms + gauge.back().dt_ms;
      if (!hist.empty()) return base_t_ms + hist.back().dt_ms;
      return 0;
    }
  };

  /// Fold-down accumulator from tier i into tier i+1.
  struct Accum {
    int64_t bucket = -1;  ///< floor(t / coarser interval); -1 = empty.
    double last = 0;
    double min = 0;
    double max = 0;
    double sum = 0;
    uint64_t count = 0;
    /// Histogram: the bucket's last cumulative counts + sum.
    std::vector<uint64_t> hist_cum;
    double hist_sum = 0;
  };

  std::vector<Ring> tiers;
  std::vector<Accum> accums;  ///< One per tier boundary (tiers.size() - 1).

  /// Newest cumulative histogram counts (for delta encoding and reset
  /// detection).
  std::vector<uint64_t> last_cum;
  uint64_t newest_ms = 0;  ///< Newest accepted raw timestamp.

  size_t ApproxBytes() const {
    size_t bytes = sizeof(Series) + name.size();
    for (const auto& [k, v] : labels) bytes += k.size() + v.size();
    for (const Ring& ring : tiers) {
      bytes += ring.scalar.size() * sizeof(ScalarPoint);
      bytes += ring.gauge.size() * sizeof(GaugePoint);
      bytes += ring.hist.size() *
               (sizeof(HistPoint) + bounds.size() * sizeof(uint32_t));
      bytes += ring.hist_base.size() * sizeof(uint64_t);
    }
    return bytes;
  }
};

namespace {

using Ring = MetricsHistory::Series::Ring;

/// Evicts points older than `newest - retention` (keeping at least the
/// newest), folding evicted histogram deltas into the ring base.
void EvictRing(Ring* ring, uint64_t newest_ms, uint64_t retention_ms) {
  uint64_t cutoff =
      newest_ms > retention_ms ? newest_ms - retention_ms : 0;
  while (ring->scalar.size() > 1 &&
         ring->base_t_ms + ring->scalar.front().dt_ms < cutoff) {
    ring->scalar.pop_front();
  }
  while (ring->gauge.size() > 1 &&
         ring->base_t_ms + ring->gauge.front().dt_ms < cutoff) {
    ring->gauge.pop_front();
  }
  while (ring->hist.size() > 1 &&
         ring->base_t_ms + ring->hist.front().dt_ms < cutoff) {
    const auto& front = ring->hist.front();
    for (size_t i = 0; i < front.dbuckets.size(); ++i) {
      ring->hist_base[i] += front.dbuckets[i];
    }
    ring->hist.pop_front();
  }
}

/// Rebases a ring so new offsets fit in 32 bits (only needed after ~49
/// days on one base; rebasing rewrites every offset once).
void MaybeRebase(Ring* ring, uint64_t t_ms) {
  if (ring->empty()) {
    ring->base_t_ms = t_ms;
    return;
  }
  if (t_ms - ring->base_t_ms <= 0xFFFF0000ull) return;
  uint64_t oldest = ring->NewestMs();
  auto oldest_of = [&](uint64_t candidate) {
    oldest = std::min(oldest, candidate);
  };
  if (!ring->scalar.empty()) {
    oldest_of(ring->base_t_ms + ring->scalar.front().dt_ms);
  }
  if (!ring->gauge.empty()) {
    oldest_of(ring->base_t_ms + ring->gauge.front().dt_ms);
  }
  if (!ring->hist.empty()) {
    oldest_of(ring->base_t_ms + ring->hist.front().dt_ms);
  }
  uint64_t shift = oldest - ring->base_t_ms;
  for (auto& p : ring->scalar) p.dt_ms -= static_cast<uint32_t>(shift);
  for (auto& p : ring->gauge) p.dt_ms -= static_cast<uint32_t>(shift);
  for (auto& p : ring->hist) p.dt_ms -= static_cast<uint32_t>(shift);
  ring->base_t_ms = oldest;
}

}  // namespace

MetricsHistory::MetricsHistory() = default;

MetricsHistory::~MetricsHistory() { Stop(); }

MetricsHistory& MetricsHistory::Default() {
  static MetricsHistory* history = new MetricsHistory();  // leaked singleton
  return *history;
}

void MetricsHistory::Configure(const HistoryOptions& options) {
  Stop();
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  if (options_.tiers.empty()) options_.tiers = {{1, 900}};
  series_.clear();
  latest_.reset();
  ticks_ = 0;
  dropped_series_ = 0;
  approx_bytes_ = 0;
  if (charged_bytes_ != 0) {
    ResourceTracker::Default().Charge(Component::kHistory, -charged_bytes_);
    charged_bytes_ = 0;
  }
}

HistoryOptions MetricsHistory::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

void MetricsHistory::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  collector_ = std::thread([this] { CollectorLoop(); });
}

void MetricsHistory::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  collector_.join();
}

bool MetricsHistory::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void MetricsHistory::CollectorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    double interval_s = std::max(0.01, options_.sample_interval_s);
    lock.unlock();
    CollectNow();
    lock.lock();
    cv_.wait_for(lock, std::chrono::duration<double>(interval_s),
                 [this] { return !running_; });
  }
}

uint64_t MetricsHistory::NowUnixMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ClockOrSystem(options_.clock).NowUnixMs();
}

std::shared_ptr<const std::vector<FamilySnapshot>>
MetricsHistory::LatestSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

void MetricsHistory::CollectNow() {
  // Snapshot the registry outside the store lock (the registry has its
  // own mutex; neither calls back into the other).
  auto snapshot = std::make_shared<const std::vector<FamilySnapshot>>(
      Registry::Default().Snapshot());

  std::lock_guard<std::mutex> lock(mu_);
  uint64_t t_ms = ClockOrSystem(options_.clock).NowUnixMs();
  for (const FamilySnapshot& family : *snapshot) {
    SeriesKind kind = SeriesKind::kGauge;
    if (family.type == "counter") kind = SeriesKind::kCounter;
    if (family.type == "histogram") kind = SeriesKind::kHistogram;
    for (const MetricSample& sample : family.samples) {
      if (kind == SeriesKind::kHistogram) {
        std::vector<double> bounds;
        std::vector<uint64_t> cumulative;
        bounds.reserve(sample.buckets.size());
        cumulative.reserve(sample.buckets.size() + 1);
        for (const auto& [bound, cum] : sample.buckets) {
          bounds.push_back(bound);
          cumulative.push_back(cum);
        }
        cumulative.push_back(sample.count);  // the +Inf bucket
        Series* series =
            FindOrCreateLocked(family.name, sample.labels, kind, &bounds);
        if (series == nullptr) continue;
        AppendLocked(series, t_ms, 0, &cumulative, sample.count, sample.sum);
      } else {
        Series* series =
            FindOrCreateLocked(family.name, sample.labels, kind, nullptr);
        if (series == nullptr) continue;
        AppendLocked(series, t_ms, sample.value, nullptr, 0, 0);
      }
    }
  }
  latest_ = snapshot;
  ++ticks_;
  PublishSelfMetricsLocked();
}

MetricsHistory::Series* MetricsHistory::FindOrCreateLocked(
    std::string_view name, const LabelSet& labels, SeriesKind kind,
    const std::vector<double>* bounds) {
  std::string key = std::string(name) + RenderLabels(labels);
  auto it = series_.find(key);
  if (it != series_.end()) {
    // A kind mismatch (family re-registered differently) drops the sample
    // rather than mixing semantics, mirroring the registry's dummy-child
    // behavior.
    return it->second->kind == kind ? it->second.get() : nullptr;
  }
  if (series_.size() >= options_.max_series) {
    ++dropped_series_;
    return nullptr;
  }
  auto series = std::make_unique<Series>();
  series->name = std::string(name);
  series->labels = labels;
  series->kind = kind;
  if (bounds != nullptr) series->bounds = *bounds;
  series->tiers.resize(options_.tiers.size());
  if (options_.tiers.size() > 1) {
    series->accums.resize(options_.tiers.size() - 1);
  }
  Series* raw = series.get();
  series_.emplace(std::move(key), std::move(series));
  return raw;
}

const MetricsHistory::Series* MetricsHistory::FindLocked(
    std::string_view name, const LabelSet& labels) const {
  std::string key = std::string(name) + RenderLabels(labels);
  auto it = series_.find(key);
  return it == series_.end() ? nullptr : it->second.get();
}

void MetricsHistory::Append(std::string_view name, const LabelSet& labels,
                            SeriesKind kind, uint64_t t_ms, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = FindOrCreateLocked(name, labels, kind, nullptr);
  if (series == nullptr) return;
  AppendLocked(series, t_ms, value, nullptr, 0, 0);
}

void MetricsHistory::RemoveSeries(std::string_view name,
                                  const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  series_.erase(std::string(name) + RenderLabels(labels));
}

void MetricsHistory::AppendLocked(Series* series, uint64_t t_ms, double value,
                                  const std::vector<uint64_t>* cumulative,
                                  uint64_t count, double sum) {
  (void)count;  // The +Inf cumulative entry already carries it.
  // Out-of-order (or repeated-tick) samples are dropped: every ring is
  // time-ascending by construction.
  if (series->newest_ms != 0 && t_ms <= series->newest_ms) return;

  if (cumulative != nullptr) {
    // Histogram reset / shape change: restart the series cleanly.
    bool reset = cumulative->size() != series->last_cum.size();
    if (!reset && !series->last_cum.empty()) {
      for (size_t i = 0; i < cumulative->size(); ++i) {
        if ((*cumulative)[i] < series->last_cum[i]) {
          reset = true;
          break;
        }
      }
    }
    if (reset && !series->last_cum.empty()) {
      for (auto& ring : series->tiers) {
        ring = Series::Ring();
      }
      for (auto& accum : series->accums) accum = Series::Accum();
      series->last_cum.clear();
    }
  }

  const std::vector<HistoryTier>& tiers = options_.tiers;
  // Fold completed buckets down the tier chain before appending, finest
  // boundary first: a sample that crosses a 60 s boundary also crossed
  // the 10 s one, and the mid flush must land before the coarse one reads
  // it. Flush points carry the completed bucket's END timestamp.
  for (size_t boundary = 0; boundary + 1 < tiers.size(); ++boundary) {
    uint64_t interval_ms = MsFromSeconds(tiers[boundary + 1].interval_s);
    if (interval_ms == 0) continue;
    int64_t bucket = static_cast<int64_t>(t_ms / interval_ms);
    Series::Accum& accum = series->accums[boundary];
    if (accum.bucket != -1 && bucket > accum.bucket) {
      uint64_t flush_ms =
          static_cast<uint64_t>(accum.bucket + 1) * interval_ms;
      Series::Ring& ring = series->tiers[boundary + 1];
      MaybeRebase(&ring, flush_ms);
      uint32_t dt = static_cast<uint32_t>(flush_ms - ring.base_t_ms);
      if (series->kind == SeriesKind::kHistogram) {
        Series::HistPoint point;
        point.dt_ms = dt;
        point.sum = accum.hist_sum;
        point.dbuckets.resize(accum.hist_cum.size());
        // Delta vs the coarser ring's newest reconstructed cumulative.
        std::vector<uint64_t> prev = ring.hist_base;
        prev.resize(accum.hist_cum.size(), 0);
        for (const auto& p : ring.hist) {
          for (size_t i = 0; i < p.dbuckets.size() && i < prev.size(); ++i) {
            prev[i] += p.dbuckets[i];
          }
        }
        if (ring.hist.empty()) ring.hist_base = prev;
        for (size_t i = 0; i < accum.hist_cum.size(); ++i) {
          uint64_t before = i < prev.size() ? prev[i] : 0;
          point.dbuckets[i] = static_cast<uint32_t>(
              accum.hist_cum[i] >= before ? accum.hist_cum[i] - before : 0);
        }
        if (ring.hist.empty() && ring.hist_base.empty()) {
          ring.hist_base.assign(accum.hist_cum.size(), 0);
        }
        ring.hist.push_back(std::move(point));
      } else if (series->kind == SeriesKind::kGauge) {
        Series::GaugePoint point;
        point.dt_ms = dt;
        point.last = accum.last;
        point.min = accum.min;
        point.max = accum.max;
        point.sum = accum.sum;
        point.count = static_cast<uint32_t>(
            std::min<uint64_t>(accum.count, 0xFFFFFFFFull));
        ring.gauge.push_back(point);
      } else {
        ring.scalar.push_back({dt, accum.last});
      }
      EvictRing(&ring, flush_ms,
                MsFromSeconds(tiers[boundary + 1].retention_s));
      accum = Series::Accum();
    }
    // Merge this sample into the (possibly fresh) accumulator.
    if (accum.bucket == -1) {
      accum.bucket = bucket;
      accum.last = value;
      accum.min = value;
      accum.max = value;
      accum.sum = value;
      accum.count = 1;
      if (cumulative != nullptr) {
        accum.hist_cum = *cumulative;
        accum.hist_sum = sum;
      }
    } else {
      accum.last = value;
      accum.min = std::min(accum.min, value);
      accum.max = std::max(accum.max, value);
      accum.sum += value;
      ++accum.count;
      if (cumulative != nullptr) {
        accum.hist_cum = *cumulative;
        accum.hist_sum = sum;
      }
    }
  }

  // Append to the raw tier.
  Series::Ring& raw = series->tiers.front();
  MaybeRebase(&raw, t_ms);
  uint32_t dt = static_cast<uint32_t>(t_ms - raw.base_t_ms);
  if (series->kind == SeriesKind::kHistogram) {
    Series::HistPoint point;
    point.dt_ms = dt;
    point.sum = sum;
    point.dbuckets.resize(cumulative->size());
    if (raw.hist.empty() && raw.hist_base.empty()) {
      raw.hist_base.assign(cumulative->size(), 0);
    }
    const std::vector<uint64_t>& prev =
        series->last_cum.empty() ? raw.hist_base : series->last_cum;
    if (raw.hist.empty()) raw.hist_base = prev;
    for (size_t i = 0; i < cumulative->size(); ++i) {
      uint64_t before = i < prev.size() ? prev[i] : 0;
      point.dbuckets[i] = static_cast<uint32_t>(
          (*cumulative)[i] >= before ? (*cumulative)[i] - before : 0);
    }
    raw.hist.push_back(std::move(point));
    series->last_cum = *cumulative;
  } else {
    raw.scalar.push_back({dt, value});
  }
  EvictRing(&raw, t_ms, MsFromSeconds(options_.tiers.front().retention_s));
  series->newest_ms = t_ms;
}

size_t MetricsHistory::TierForLocked(uint64_t t0_ms, uint64_t now_ms) const {
  uint64_t age_ms = now_ms > t0_ms ? now_ms - t0_ms : 0;
  for (size_t i = 0; i < options_.tiers.size(); ++i) {
    if (MsFromSeconds(options_.tiers[i].retention_s) >= age_ms) return i;
  }
  return options_.tiers.size() - 1;
}

namespace {

/// A tier's points reconstructed as absolute (t, value[, extras]) rows for
/// window/range math. Histograms reconstruct cumulative counts.
struct FlatPoint {
  uint64_t t_ms = 0;
  double value = 0;               ///< Scalar value / gauge last.
  double min = 0, max = 0, sum = 0;
  uint64_t count = 0;             ///< Gauge fold count (1 for raw).
  std::vector<uint64_t> cum;      ///< Histogram cumulative (incl. +Inf).
  double hist_sum = 0;
};

std::vector<FlatPoint> Flatten(const MetricsHistory::Series& series,
                               const Ring& ring) {
  std::vector<FlatPoint> out;
  out.reserve(ring.size());
  for (const auto& p : ring.scalar) {
    FlatPoint f;
    f.t_ms = ring.base_t_ms + p.dt_ms;
    f.value = p.value;
    f.min = f.max = f.sum = p.value;
    f.count = 1;
    out.push_back(std::move(f));
  }
  for (const auto& p : ring.gauge) {
    FlatPoint f;
    f.t_ms = ring.base_t_ms + p.dt_ms;
    f.value = p.last;
    f.min = p.min;
    f.max = p.max;
    f.sum = p.sum;
    f.count = p.count;
    out.push_back(std::move(f));
  }
  std::vector<uint64_t> cum = ring.hist_base;
  for (const auto& p : ring.hist) {
    FlatPoint f;
    f.t_ms = ring.base_t_ms + p.dt_ms;
    for (size_t i = 0; i < p.dbuckets.size() && i < cum.size(); ++i) {
      cum[i] += p.dbuckets[i];
    }
    f.cum = cum;
    f.hist_sum = p.sum;
    f.value = f.cum.empty() ? 0 : static_cast<double>(f.cum.back());
    f.count = 1;
    out.push_back(std::move(f));
  }
  (void)series;
  return out;
}

/// Counter increase across consecutive points with Prometheus-style reset
/// handling: a decrease contributes the post-reset value.
double Increase(const std::vector<const FlatPoint*>& pts) {
  double total = 0;
  for (size_t i = 1; i < pts.size(); ++i) {
    double prev = pts[i - 1]->value;
    double cur = pts[i]->value;
    total += cur >= prev ? cur - prev : cur;
  }
  return total;
}

}  // namespace

std::optional<WindowStats> MetricsHistory::Window(std::string_view name,
                                                  const LabelSet& labels,
                                                  uint64_t t0_ms,
                                                  uint64_t t1_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* series = FindLocked(name, labels);
  if (series == nullptr) return std::nullopt;
  uint64_t now_ms = ClockOrSystem(options_.clock).NowUnixMs();
  size_t tier = TierForLocked(t0_ms, now_ms);
  std::vector<FlatPoint> flat = Flatten(*series, series->tiers[tier]);
  std::vector<const FlatPoint*> in_window;
  for (const FlatPoint& p : flat) {
    if (p.t_ms >= t0_ms && p.t_ms <= t1_ms) in_window.push_back(&p);
  }
  if (in_window.empty()) return std::nullopt;
  WindowStats stats;
  stats.points = in_window.size();
  stats.first = in_window.front()->value;
  stats.last = in_window.back()->value;
  double sum = 0;
  uint64_t count = 0;
  stats.min = in_window.front()->min;
  stats.max = in_window.front()->max;
  for (const FlatPoint* p : in_window) {
    stats.min = std::min(stats.min, p->min);
    stats.max = std::max(stats.max, p->max);
    sum += p->sum;
    count += p->count;
  }
  stats.avg = count == 0 ? 0 : sum / static_cast<double>(count);
  stats.increase = Increase(in_window);
  return stats;
}

RangeResult MetricsHistory::Range(const RangeRequest& request) const {
  RangeResult result;
  std::lock_guard<std::mutex> lock(mu_);
  if (request.name.empty()) {
    result.error = "name is required";
    return result;
  }
  if (request.end_ms <= request.start_ms) {
    result.error = "end_s must be greater than start_s";
    return result;
  }
  uint64_t now_ms = ClockOrSystem(options_.clock).NowUnixMs();
  size_t tier = TierForLocked(request.start_ms, now_ms);
  uint64_t tier_interval_ms = MsFromSeconds(options_.tiers[tier].interval_s);
  uint64_t step_ms = std::max(request.step_ms, tier_interval_ms);
  if (step_ms == 0) step_ms = 1000;
  if ((request.end_ms - request.start_ms) / step_ms > kMaxRangePoints) {
    result.error = "range spans more than 10000 steps; raise step_s";
    return result;
  }
  result.tier = tier;
  result.tier_interval_s = options_.tiers[tier].interval_s;
  result.step_ms = step_ms;

  // Find every child of the family, honoring the label filter.
  std::vector<const Series*> children;
  for (auto it = series_.lower_bound(request.name); it != series_.end();
       ++it) {
    const Series* series = it->second.get();
    if (series->name != request.name) {
      if (it->first.compare(0, request.name.size(), request.name) != 0) break;
      continue;
    }
    if (!request.label_key.empty()) {
      bool matched = false;
      for (const auto& [key, value] : series->labels) {
        if (key == request.label_key && value == request.label_value) {
          matched = true;
          break;
        }
      }
      if (!matched) continue;
    }
    children.push_back(series);
  }
  if (children.empty()) {
    // An unknown family is an empty answer, not an error: the series may
    // simply not have been collected yet.
    return result;
  }
  result.kind = children.front()->kind;

  // Aggregation/kind compatibility.
  auto invalid = [&](std::string_view why) {
    result.error = std::string("agg=") + std::string(RangeAggName(request.agg)) +
                   " is not valid for a " +
                   std::string(SeriesKindName(result.kind)) + " series (" +
                   std::string(why) + ")";
    return result;
  };
  switch (result.kind) {
    case SeriesKind::kCounter:
      if (request.agg != RangeAgg::kRate && request.agg != RangeAgg::kLast) {
        return invalid("counters support rate|last");
      }
      break;
    case SeriesKind::kGauge:
      if (request.agg == RangeAgg::kRate || request.agg == RangeAgg::kP50 ||
          request.agg == RangeAgg::kP99) {
        return invalid("gauges support avg|min|max|last");
      }
      break;
    case SeriesKind::kHistogram:
      if (request.agg != RangeAgg::kRate && request.agg != RangeAgg::kP50 &&
          request.agg != RangeAgg::kP99) {
        return invalid("histograms support rate|p50|p99");
      }
      break;
  }

  for (const Series* series : children) {
    RangeSeries out;
    out.labels = series->labels;
    std::vector<FlatPoint> flat = Flatten(*series, series->tiers[tier]);
    if (!flat.empty()) {
      for (uint64_t t = request.start_ms; t < request.end_ms; t += step_ms) {
        uint64_t bucket_end = std::min(t + step_ms, request.end_ms);
        // Left edge: the last point at or before the bucket start (so
        // rates and quantile deltas cover the full bucket). Right edge:
        // the last point at or before the bucket end.
        const FlatPoint* left = nullptr;
        const FlatPoint* right = nullptr;
        std::vector<const FlatPoint*> inside;
        for (const FlatPoint& p : flat) {
          if (p.t_ms <= t) left = &p;
          if (p.t_ms <= bucket_end) right = &p;
          if (p.t_ms > t && p.t_ms <= bucket_end) inside.push_back(&p);
        }
        switch (request.agg) {
          case RangeAgg::kRate: {
            if (left == nullptr) left = inside.empty() ? nullptr : inside[0];
            if (left == nullptr || right == nullptr || right == left) break;
            double span_s =
                static_cast<double>(right->t_ms - left->t_ms) / 1000.0;
            if (span_s <= 0) break;
            // Counter increase between the edges, reset-aware; for
            // histograms the +Inf cumulative count is the counter.
            std::vector<const FlatPoint*> edges;
            for (const FlatPoint& p : flat) {
              if (p.t_ms >= left->t_ms && p.t_ms <= right->t_ms) {
                edges.push_back(&p);
              }
            }
            out.points.push_back({t, Increase(edges) / span_s});
            break;
          }
          case RangeAgg::kAvg:
          case RangeAgg::kMin:
          case RangeAgg::kMax: {
            if (inside.empty()) break;
            double sum = 0;
            uint64_t count = 0;
            double mn = inside.front()->min;
            double mx = inside.front()->max;
            for (const FlatPoint* p : inside) {
              sum += p->sum;
              count += p->count;
              mn = std::min(mn, p->min);
              mx = std::max(mx, p->max);
            }
            double value = request.agg == RangeAgg::kMin   ? mn
                           : request.agg == RangeAgg::kMax ? mx
                           : (count == 0 ? 0
                                         : sum / static_cast<double>(count));
            out.points.push_back({t, value});
            break;
          }
          case RangeAgg::kLast: {
            if (inside.empty()) break;
            out.points.push_back({t, inside.back()->value});
            break;
          }
          case RangeAgg::kP50:
          case RangeAgg::kP99: {
            if (left == nullptr) left = inside.empty() ? nullptr : inside[0];
            if (left == nullptr || right == nullptr || right == left) break;
            if (left->cum.empty() || right->cum.empty()) break;
            std::vector<uint64_t> deltas(series->bounds.size() + 1, 0);
            for (size_t i = 0; i < deltas.size(); ++i) {
              uint64_t lo = i < left->cum.size() ? left->cum[i] : 0;
              uint64_t hi = i < right->cum.size() ? right->cum[i] : 0;
              deltas[i] = hi >= lo ? hi - lo : 0;
            }
            // De-cumulate: per-bucket counts from cumulative deltas.
            for (size_t i = deltas.size(); i-- > 1;) {
              deltas[i] -= std::min(deltas[i], deltas[i - 1]);
            }
            uint64_t total = 0;
            for (uint64_t d : deltas) total += d;
            if (total == 0) break;
            double q = request.agg == RangeAgg::kP50 ? 0.50 : 0.99;
            out.points.push_back(
                {t, QuantileFromDeltas(series->bounds, deltas, q)});
            break;
          }
        }
      }
    }
    result.series.push_back(std::move(out));
  }
  return result;
}

std::vector<SeriesWindow> MetricsHistory::WindowDump(std::string_view name,
                                                     uint64_t t0_ms,
                                                     uint64_t t1_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SeriesWindow> out;
  uint64_t now_ms = ClockOrSystem(options_.clock).NowUnixMs();
  size_t tier = TierForLocked(t0_ms, now_ms);
  for (auto it = series_.lower_bound(name); it != series_.end(); ++it) {
    const Series* series = it->second.get();
    if (series->name != name) {
      if (it->first.compare(0, name.size(), name) != 0) break;
      continue;
    }
    SeriesWindow window;
    window.name = series->name;
    window.labels = series->labels;
    window.kind = series->kind;
    for (const FlatPoint& p : Flatten(*series, series->tiers[tier])) {
      if (p.t_ms < t0_ms || p.t_ms > t1_ms) continue;
      window.points.push_back({p.t_ms, p.value});
    }
    out.push_back(std::move(window));
  }
  return out;
}

std::optional<SeriesKind> MetricsHistory::Kind(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = series_.lower_bound(name); it != series_.end(); ++it) {
    if (it->second->name == name) return it->second->kind;
    if (it->first.compare(0, name.size(), name) != 0) break;
  }
  return std::nullopt;
}

size_t MetricsHistory::SeriesCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

size_t MetricsHistory::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& [key, series] : series_) bytes += series->ApproxBytes();
  return bytes;
}

uint64_t MetricsHistory::Ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

void MetricsHistory::PublishSelfMetricsLocked() {
  size_t bytes = 0;
  for (const auto& [key, series] : series_) bytes += series->ApproxBytes();
  approx_bytes_ = bytes;
  int64_t delta = static_cast<int64_t>(bytes) - charged_bytes_;
  if (delta != 0) {
    ResourceTracker::Default().Charge(Component::kHistory, delta);
    charged_bytes_ += delta;
  }
  Registry& registry = Registry::Default();
  registry
      .GetGauge("raptor_history_series",
                "Distinct metric series retained by the history store")
      ->Set(static_cast<int64_t>(series_.size()));
  registry
      .GetGauge("raptor_history_bytes",
                "Approximate bytes retained by the history store")
      ->Set(static_cast<int64_t>(bytes));
  registry
      .GetGauge("raptor_history_dropped_series",
                "Series rejected because max_series was reached")
      ->Set(static_cast<int64_t>(dropped_series_));
  static Counter* ticks = registry.GetCounter(
      "raptor_history_samples_total",
      "Collector ticks performed by the metrics history store");
  ticks->Increment();
}

}  // namespace raptor::obs
