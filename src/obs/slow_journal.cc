#include "obs/slow_journal.h"

#include <chrono>

#include "obs/metrics.h"

namespace raptor::obs {

SlowJournal& SlowJournal::Default() {
  static SlowJournal* journal = new SlowJournal();
  return *journal;
}

void SlowJournal::Configure(const SlowJournalOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  if (options_.capacity == 0) options_.capacity = 1;
  while (entries_.size() > options_.capacity) entries_.pop_front();
}

SlowJournalOptions SlowJournal::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

bool SlowJournal::ShouldRecord(double total_ms, uint64_t bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.latency_threshold_ms > 0 &&
      total_ms >= options_.latency_threshold_ms) {
    return true;
  }
  return options_.bytes_threshold > 0 && bytes >= options_.bytes_threshold;
}

uint64_t SlowJournal::Record(SlowEntry entry) {
  entry.unix_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::string kind = entry.kind;
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entry.trigger.empty()) {
      entry.trigger = (options_.latency_threshold_ms > 0 &&
                       entry.total_ms >= options_.latency_threshold_ms)
                          ? "latency"
                          : "bytes";
    }
    id = next_id_++;
    entry.id = id;
    entries_.push_back(std::move(entry));
    while (entries_.size() > options_.capacity) entries_.pop_front();
  }
  Registry::Default()
      .GetCounter("raptor_slow_journal_entries_total",
                  "Executions recorded by the slow journal",
                  {{"kind", kind}})
      ->Increment();
  return id;
}

std::vector<SlowEntry> SlowJournal::Snapshot(size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowEntry> out;
  size_t n = entries_.size();
  if (limit != 0 && limit < n) n = limit;
  out.reserve(n);
  for (auto it = entries_.rbegin(); it != entries_.rend() && out.size() < n;
       ++it) {
    out.push_back(*it);
  }
  return out;
}

std::optional<SlowEntry> SlowJournal::Find(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const SlowEntry& entry : entries_) {
    if (entry.id == id) return entry;
  }
  return std::nullopt;
}

void SlowJournal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace raptor::obs
