#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include "obs/profiler.h"

namespace raptor::obs {

namespace {

uint64_t UnixMillisNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// \brief The trace a thread is currently recording: the growing span list
/// plus the open-span stack that gives StartSpan its parent.
struct ActiveTrace {
  Trace trace;
  std::vector<uint32_t> open_spans;
  std::chrono::steady_clock::time_point t0;

  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
};

namespace {

thread_local ActiveTrace* g_active = nullptr;

/// Mirrors the thread's open-span names into its profiler slot (see
/// profiler.h). Always a full rebuild from `open_spans` — the source of
/// truth — so a profiler started mid-trace self-corrects on the next span
/// operation. Gated on one relaxed atomic load when profiling is off.
void PublishStackForProfiler(const ActiveTrace* at) {
  if (!profiler_internal::Tracking()) return;
  std::string_view frames[kMaxProfileDepth];
  size_t depth = std::min(at->open_spans.size(), kMaxProfileDepth);
  for (size_t i = 0; i < depth; ++i) {
    frames[i] = at->trace.spans[at->open_spans[i]].name;
  }
  profiler_internal::PublishSpanStack(frames, depth);
}

/// Marks the thread idle for the profiler when its trace ends.
void PublishIdleForProfiler() {
  if (!profiler_internal::Tracking()) return;
  profiler_internal::PublishSpanStack(nullptr, 0);
}

uint32_t OpenSpan(ActiveTrace* at, std::string_view name) {
  SpanData span;
  span.id = static_cast<uint32_t>(at->trace.spans.size());
  span.parent = at->open_spans.empty() ? span.id : at->open_spans.back();
  span.name = std::string(name);
  span.start_ns = at->NowNs();
  at->trace.spans.push_back(std::move(span));
  at->open_spans.push_back(at->trace.spans.back().id);
  PublishStackForProfiler(at);
  return at->trace.spans.back().id;
}

/// Copies the subtree rooted at `root` out of `spans`, reindexing ids so
/// the subtree root becomes span 0 of the returned trace.
Trace ExtractSubtree(const Trace& full, uint32_t root) {
  Trace out;
  out.id = full.id;
  out.started_unix_ms = full.started_unix_ms;
  out.name = full.spans[root].name;
  std::vector<uint32_t> remap(full.spans.size(), UINT32_MAX);
  for (uint32_t i = root; i < full.spans.size(); ++i) {
    const SpanData& span = full.spans[i];
    bool in_subtree = i == root || (span.parent != i &&
                                    remap[span.parent] != UINT32_MAX);
    if (!in_subtree) continue;
    SpanData copy = span;
    copy.id = static_cast<uint32_t>(out.spans.size());
    copy.parent = i == root ? copy.id : remap[span.parent];
    remap[i] = copy.id;
    out.spans.push_back(std::move(copy));
  }
  return out;
}

}  // namespace

// --- Span. ---

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    trace_ = other.trace_;
    index_ = other.index_;
    other.trace_ = nullptr;
  }
  return *this;
}

void Span::SetAttr(std::string_view key, std::string_view value) {
  if (trace_ == nullptr) return;
  trace_->trace.spans[index_].attrs.emplace_back(std::string(key),
                                                 std::string(value));
}

void Span::SetAttr(std::string_view key, int64_t value) {
  if (trace_ == nullptr) return;
  SetAttr(key, std::to_string(value));
}

void Span::SetAttr(std::string_view key, double value) {
  if (trace_ == nullptr) return;
  SetAttr(key, std::to_string(value));
}

void Span::SetAttr(std::string_view key, bool value) {
  if (trace_ == nullptr) return;
  SetAttr(key, std::string_view(value ? "true" : "false"));
}

void Span::Annotate(std::string_view note) {
  if (trace_ == nullptr) return;
  trace_->trace.spans[index_].annotations.emplace_back(note);
}

void Span::End() {
  if (trace_ == nullptr) return;
  trace_->trace.spans[index_].end_ns = trace_->NowNs();
  // Spans end LIFO under RAII; tolerate out-of-order ends by erasing
  // wherever the span sits on the open stack.
  auto& open = trace_->open_spans;
  for (size_t i = open.size(); i > 0; --i) {
    if (open[i - 1] == index_) {
      open.erase(open.begin() + static_cast<ptrdiff_t>(i - 1));
      break;
    }
  }
  PublishStackForProfiler(trace_);
  trace_ = nullptr;
}

// --- TraceScope. ---

TraceScope& TraceScope::operator=(TraceScope&& other) noexcept {
  if (this != &other) {
    Finish();
    tracer_ = other.tracer_;
    trace_ = other.trace_;
    owns_ = other.owns_;
    root_span_ = std::move(other.root_span_);
    other.trace_ = nullptr;
    other.owns_ = false;
  }
  return *this;
}

std::optional<Trace> TraceScope::Finish() {
  if (trace_ == nullptr) return std::nullopt;
  ActiveTrace* at = trace_;
  trace_ = nullptr;
  uint32_t root_index = root_span_.index_;
  root_span_.End();

  if (!owns_) {
    // Nested scope: the enclosing trace keeps recording; hand back a copy
    // of the finished subtree.
    return ExtractSubtree(at->trace, root_index);
  }

  g_active = nullptr;
  PublishIdleForProfiler();
  Trace finished = std::move(at->trace);
  delete at;
  if (tracer_ != nullptr && tracer_->enabled()) {
    Trace copy = finished;
    tracer_->Publish(std::move(copy));
  }
  return finished;
}

// --- TraceContext. ---

struct TraceContext::State {
  ActiveTrace* parent = nullptr;  ///< Valid while the capturing thread waits.
  uint64_t trace_id = 0;
  std::chrono::steady_clock::time_point parent_t0;

  struct Subtree {
    Trace trace;
    std::chrono::steady_clock::time_point t0;
  };
  std::mutex mu;
  std::vector<Subtree> subtrees;
};

TraceContext TraceContext::Capture() {
  TraceContext context;
  if (g_active == nullptr) return context;
  context.state_ = std::make_shared<State>();
  context.state_->parent = g_active;
  context.state_->trace_id = g_active->trace.id;
  context.state_->parent_t0 = g_active->t0;
  return context;
}

uint64_t TraceContext::trace_id() const {
  return state_ == nullptr ? 0 : state_->trace_id;
}

TraceContext::Scope TraceContext::Adopt(std::string_view task_name) const {
  Scope scope;
  // No captured trace, the capturing thread itself (spans nest directly),
  // or a thread already recording some other trace: adopt nothing.
  if (state_ == nullptr || g_active != nullptr) return scope;
  auto* at = new ActiveTrace();
  at->t0 = std::chrono::steady_clock::now();
  at->trace.id = state_->trace_id;
  at->trace.name = std::string(task_name);
  at->trace.started_unix_ms = UnixMillisNow();
  g_active = at;
  OpenSpan(at, task_name);
  scope.context_ = this;
  scope.adopted_ = at;
  return scope;
}

TraceContext::Scope& TraceContext::Scope::operator=(Scope&& other) noexcept {
  if (this != &other) {
    Release();
    context_ = other.context_;
    adopted_ = other.adopted_;
    other.context_ = nullptr;
    other.adopted_ = nullptr;
  }
  return *this;
}

void TraceContext::Scope::Release() {
  if (adopted_ == nullptr) return;
  ActiveTrace* at = adopted_;
  adopted_ = nullptr;
  at->trace.spans[0].end_ns = at->NowNs();
  g_active = nullptr;
  PublishIdleForProfiler();
  State* state = context_->state_.get();
  context_ = nullptr;
  std::lock_guard<std::mutex> lock(state->mu);
  state->subtrees.push_back({std::move(at->trace), at->t0});
  delete at;
}

void TraceContext::Merge() const {
  if (state_ == nullptr) return;
  // Only the capturing thread, still inside the captured trace, can splice.
  if (g_active != state_->parent) return;
  ActiveTrace* parent = state_->parent;
  std::lock_guard<std::mutex> lock(state_->mu);
  for (State::Subtree& sub : state_->subtrees) {
    // Worker spans are timed against the worker's own t0; shift them onto
    // the parent clock base.
    uint64_t offset_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            sub.t0 - state_->parent_t0)
            .count());
    uint32_t attach = parent->open_spans.empty()
                          ? 0
                          : parent->open_spans.back();
    std::vector<uint32_t> remap(sub.trace.spans.size(), 0);
    for (const SpanData& span : sub.trace.spans) {
      SpanData copy = span;
      copy.id = static_cast<uint32_t>(parent->trace.spans.size());
      copy.parent = span.id == span.parent ? attach : remap[span.parent];
      copy.start_ns += offset_ns;
      if (copy.end_ns != 0) copy.end_ns += offset_ns;
      remap[span.id] = copy.id;
      parent->trace.spans.push_back(std::move(copy));
    }
  }
  state_->subtrees.clear();
}

// --- Tracer. ---

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (ring_.size() > capacity_) ring_.pop_front();
}

TraceScope Tracer::BeginTrace(std::string_view name, bool force) {
  TraceScope scope;
  if (g_active != nullptr) {
    // Nested: open a subtree span within the active trace.
    scope.tracer_ = this;
    scope.trace_ = g_active;
    scope.owns_ = false;
    scope.root_span_ = Span(g_active, OpenSpan(g_active, name));
    return scope;
  }
  if (!force && !enabled()) return scope;  // inactive

  auto* at = new ActiveTrace();
  at->t0 = std::chrono::steady_clock::now();
  at->trace.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  at->trace.name = std::string(name);
  at->trace.started_unix_ms = UnixMillisNow();
  g_active = at;
  scope.tracer_ = this;
  scope.trace_ = at;
  scope.owns_ = true;
  scope.root_span_ = Span(at, OpenSpan(at, name));
  return scope;
}

Span Tracer::StartSpan(std::string_view name) {
  if (g_active == nullptr) return Span();
  return Span(g_active, OpenSpan(g_active, name));
}

bool Tracer::TraceActive() { return g_active != nullptr; }

uint64_t Tracer::CurrentTraceId() {
  return g_active == nullptr ? 0 : g_active->trace.id;
}

void Tracer::Publish(Trace&& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<Trace> Tracer::RecentTraces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Trace>(ring_.rbegin(), ring_.rend());
}

std::optional<Trace> Tracer::FindTrace(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Trace& trace : ring_) {
    if (trace.id == id) return trace;
  }
  return std::nullopt;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

}  // namespace raptor::obs
