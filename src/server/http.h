// Minimal embedded HTTP/1.1 server (substrate for the paper's §III web
// UI deployment — "We deployed THREATRAPTOR on a server and built a web
// UI"). Single accept thread, blocking per-request handling, exact-match
// routing. Enough to serve the demo UI and its JSON API on localhost; not
// a general-purpose web server.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "common/result.h"

namespace raptor::server {

/// \brief One parsed request.
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string path;    ///< Path only; the query string is split off.
  std::string query;   ///< Raw query string (no leading '?').
  std::map<std::string, std::string> headers;  ///< Lower-cased names.
  std::string body;
};

/// \brief One response; the server adds Content-Length and connection
/// headers.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Streaming body (Server-Sent Events): when set, `body` is ignored. The
  /// server sends the status line and headers without Content-Length
  /// (Connection: close delimits the body), then calls this repeatedly —
  /// writing each returned chunk — until it returns nullopt. The callback
  /// may block between chunks (it runs on the accept thread, which serves
  /// connections serially, so handlers should bound the stream).
  std::function<std::optional<std::string>()> body_stream = nullptr;
};

using Handler = std::function<HttpResponse(const HttpRequest&)>;

/// \brief Abuse limits for one connection. Defaults suit a localhost demo
/// deployment; tests shrink them to drive the failure paths.
struct HttpServerOptions {
  /// Total wall-clock budget for reading one request (head + body). A
  /// client that dribbles bytes slower than this (slowloris) gets a 408.
  int recv_timeout_ms = 5000;
  /// Maximum bytes of request head (request line + headers); 413 beyond.
  size_t max_header_bytes = 64 * 1024;
  /// Maximum Content-Length / body bytes accepted; 413 beyond.
  size_t max_body_bytes = 16u << 20;
};

/// Parses the head of an HTTP/1.1 request (request line + headers). The
/// body is whatever follows per Content-Length; the caller appends it.
/// Exposed for unit tests.
Result<HttpRequest> ParseRequestHead(std::string_view head);

/// Serializes a response with Content-Length and Connection: close.
std::string SerializeResponse(const HttpResponse& response);

/// \brief The server. Routes are exact (method, path) matches registered
/// before Start(), plus prefix routes for path-parameter endpoints
/// (RoutePrefix); unknown paths get 404, unknown methods on known paths
/// get 405.
class HttpServer {
 public:
  HttpServer() = default;
  explicit HttpServer(HttpServerOptions options) : options_(options) {}
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler. Not thread-safe against a running server.
  void Route(const std::string& method, const std::string& path,
             Handler handler);

  /// Registers a handler for every path starting with `prefix` (e.g.
  /// "/api/traces/" serving "/api/traces/<id>"). Exact routes win over
  /// prefix routes; among prefix routes the longest matching prefix wins.
  void RoutePrefix(const std::string& method, const std::string& prefix,
                   Handler handler);

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept thread.
  Status Start(uint16_t port);

  /// Stops the accept loop and joins the thread. Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

  const HttpServerOptions& options() const { return options_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  HttpServerOptions options_;
  std::map<std::pair<std::string, std::string>, Handler> routes_;
  /// Prefix routes, keyed (method, prefix); longest prefix wins.
  std::map<std::pair<std::string, std::string>, Handler> prefix_routes_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace raptor::server
