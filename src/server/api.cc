#include "server/api.h"

#include "common/json.h"
#include "common/strings.h"
#include "engine/explain.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"
#include "tbql/printer.h"

namespace raptor::server {

namespace {

HttpResponse JsonResponse(const Json& json, int status = 200) {
  return HttpResponse{status, "application/json; charset=utf-8",
                      json.Dump(2) + "\n"};
}

HttpResponse ErrorResponse(const Status& status) {
  Json::Object error;
  error["error"] = status.ToString();
  return JsonResponse(Json(std::move(error)), 400);
}

Json ResultToJson(const engine::QueryResult& result) {
  Json::Object out;
  Json::Array columns;
  for (const std::string& c : result.columns) columns.push_back(c);
  out["columns"] = Json(std::move(columns));
  Json::Array rows;
  for (const auto& row : result.rows) {
    Json::Array cells;
    for (const std::string& cell : row) cells.push_back(cell);
    rows.push_back(Json(std::move(cells)));
  }
  out["rows"] = Json(std::move(rows));
  Json::Object stats;
  stats["total_ms"] = result.stats.total_ms;
  stats["rows_touched"] =
      static_cast<double>(result.stats.relational_rows_touched);
  stats["graph_edges_traversed"] =
      static_cast<double>(result.stats.graph_edges_traversed);
  Json::Array schedule;
  for (const std::string& s : result.stats.schedule) schedule.push_back(s);
  stats["schedule"] = Json(std::move(schedule));
  stats["truncated"] = result.truncated;
  if (result.truncated) {
    stats["truncation_reason"] = result.stats.truncation_reason;
  }
  out["stats"] = Json(std::move(stats));
  return Json(std::move(out));
}

Json GraphToJson(const nlp::ThreatBehaviorGraph& graph) {
  Json::Object out;
  Json::Array nodes;
  for (const nlp::IocEntity& n : graph.nodes()) {
    Json::Object node;
    node["id"] = n.id;
    node["type"] = std::string(nlp::IocTypeName(n.type));
    node["text"] = n.text;
    nodes.push_back(Json(std::move(node)));
  }
  out["nodes"] = Json(std::move(nodes));
  Json::Array edges;
  for (const nlp::BehaviorEdge& e : graph.edges()) {
    Json::Object edge;
    edge["seq"] = e.sequence;
    edge["src"] = graph.node(e.src).text;
    edge["verb"] = e.verb;
    edge["dst"] = graph.node(e.dst).text;
    edges.push_back(Json(std::move(edge)));
  }
  out["edges"] = Json(std::move(edges));
  return Json(std::move(out));
}

constexpr const char* kIndexHtml = R"HTML(<!doctype html>
<html><head><meta charset="utf-8"><title>ThreatRaptor</title>
<style>
 body { font-family: sans-serif; margin: 2rem; max-width: 70rem; }
 textarea { width: 100%; font-family: monospace; }
 pre { background: #f4f4f4; padding: .8rem; overflow-x: auto; }
 h2 { margin-top: 2rem; }
 button { margin: .3rem .3rem .3rem 0; }
</style></head>
<body>
<h1>ThreatRaptor</h1>
<p>Threat hunting with OSCTI: paste a threat report and hunt, or write
TBQL directly.</p>

<h2>OSCTI report</h2>
<textarea id="report" rows="6">The process /bin/tar read the file /etc/passwd. /bin/tar then wrote the collected data to /tmp/data.tar. The process /bin/gzip read /tmp/data.tar and wrote the compressed archive /tmp/data.tar.gz. Finally, the process /usr/bin/curl read /tmp/data.tar.gz and sent the archive to the IP 161.35.10.8.</textarea><br>
<button onclick="post('/api/extract','report')">Extract behavior graph</button>
<button onclick="post('/api/hunt','report')">Hunt</button>

<h2>TBQL query</h2>
<textarea id="query" rows="4">proc p["%tar%"] read file f
return p, f</textarea><br>
<button onclick="post('/api/query','query')">Run</button>
<button onclick="post('/api/explain','query')">Explain</button>
<button onclick="fetch('/api/stats').then(r=>r.text()).then(show)">Stats</button>

<h2>Output</h2>
<pre id="out">(results appear here)</pre>
<script>
 function show(text) { document.getElementById('out').textContent = text; }
 function post(url, boxId) {
   fetch(url, {method: 'POST',
               body: document.getElementById(boxId).value})
     .then(r => r.text()).then(show)
     .catch(e => show('request failed: ' + e));
 }
</script>
</body></html>
)HTML";

}  // namespace

void RegisterThreatRaptorApi(HttpServer* server, ThreatRaptor* system) {
  server->Route("GET", "/", [](const HttpRequest&) {
    return HttpResponse{200, "text/html; charset=utf-8", kIndexHtml};
  });

  server->Route("GET", "/api/stats", [system](const HttpRequest&) {
    Json::Object stats;
    stats["events"] = static_cast<double>(system->log().event_count());
    stats["entities"] = static_cast<double>(system->log().entity_count());
    stats["cpr_reduction"] = system->cpr_stats().ReductionRatio();
    return JsonResponse(Json(std::move(stats)));
  });

  server->Route("POST", "/api/extract", [system](const HttpRequest& req) {
    nlp::ExtractionResult extraction = system->ExtractBehavior(req.body);
    return JsonResponse(GraphToJson(extraction.graph));
  });

  server->Route("POST", "/api/hunt", [system](const HttpRequest& req) {
    // "?degraded=1" opts this hunt into degraded mode: partial results
    // instead of an error when synthesis or full-query execution fails.
    HuntOptions hunt_options = system->options().hunt;
    if (req.query.find("degraded=1") != std::string::npos) {
      hunt_options.allow_degraded = true;
    }
    auto hunt = system->Hunt(req.body, hunt_options);
    if (!hunt.ok()) return ErrorResponse(hunt.status());
    Json::Object out;
    out["behavior_graph"] = GraphToJson(hunt->extraction.graph);
    out["tbql"] = hunt->query_text;
    out["result"] = ResultToJson(hunt->result);
    if (hunt->degradation.degraded) {
      Json::Object degradation;
      degradation["degraded"] = true;
      Json::Array failures;
      for (const auto& f : hunt->degradation.failures) {
        Json::Object failure;
        failure["stage"] = f.stage;
        failure["error"] = f.error;
        failures.push_back(Json(std::move(failure)));
      }
      degradation["failures"] = Json(std::move(failures));
      degradation["subqueries_attempted"] =
          static_cast<double>(hunt->degradation.subqueries_attempted);
      degradation["subqueries_succeeded"] =
          static_cast<double>(hunt->degradation.subqueries_succeeded);
      out["degradation"] = Json(std::move(degradation));
    }
    return JsonResponse(Json(std::move(out)));
  });

  server->Route("POST", "/api/query", [system](const HttpRequest& req) {
    auto result = system->ExecuteTbql(req.body);
    if (!result.ok()) return ErrorResponse(result.status());
    return JsonResponse(ResultToJson(*result));
  });

  server->Route("POST", "/api/explain", [system](const HttpRequest& req) {
    auto parsed = tbql::Parse(req.body);
    if (!parsed.ok()) return ErrorResponse(parsed.status());
    if (Status st = tbql::Analyze(&*parsed); !st.ok()) {
      return ErrorResponse(st);
    }
    auto result = system->ExecuteQuery(*parsed);
    if (!result.ok()) return ErrorResponse(result.status());
    Json::Object out;
    out["explain"] = engine::ExplainAnalyze(*parsed, *result);
    return JsonResponse(Json(std::move(out)));
  });
}

}  // namespace raptor::server
