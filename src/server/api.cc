#include "server/api.h"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "common/build_info.h"
#include "common/json.h"
#include "common/result.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "engine/explain.h"
#include "obs/history.h"
#include "obs/incident.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/misestimate_journal.h"
#include "obs/profile.h"
#include "obs/profiler.h"
#include "obs/resource.h"
#include "obs/slo.h"
#include "obs/slow_journal.h"
#include "obs/trace.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"
#include "tbql/printer.h"

namespace raptor::server {

namespace {

HttpResponse JsonResponse(const Json& json, int status = 200) {
  return HttpResponse{status, "application/json; charset=utf-8",
                      json.Dump(2) + "\n"};
}

HttpResponse ErrorResponse(const Status& status) {
  Json::Object error;
  error["error"] = status.ToString();
  return JsonResponse(Json(std::move(error)), 400);
}

Json ProfileToJson(const obs::Profile& profile);
Json BuildInfoJson();

Json ResultToJson(const engine::QueryResult& result,
                  const obs::Profile* profile = nullptr) {
  Json::Object out;
  if (profile != nullptr && !profile->empty()) {
    out["profile"] = ProfileToJson(*profile);
  }
  Json::Array columns;
  for (const std::string& c : result.columns) columns.push_back(c);
  out["columns"] = Json(std::move(columns));
  Json::Array rows;
  for (const auto& row : result.rows) {
    Json::Array cells;
    for (const std::string& cell : row) cells.push_back(cell);
    rows.push_back(Json(std::move(cells)));
  }
  out["rows"] = Json(std::move(rows));
  Json::Object stats;
  stats["total_ms"] = result.stats.total_ms;
  stats["rows_touched"] =
      static_cast<double>(result.stats.relational_rows_touched);
  stats["graph_edges_traversed"] =
      static_cast<double>(result.stats.graph_edges_traversed);
  stats["bytes_touched"] = static_cast<double>(result.stats.bytes_touched);
  Json::Array schedule;
  for (const std::string& s : result.stats.schedule) schedule.push_back(s);
  stats["schedule"] = Json(std::move(schedule));
  stats["truncated"] = result.truncated;
  if (result.truncated) {
    stats["truncation_reason"] = result.stats.truncation_reason;
  }
  out["stats"] = Json(std::move(stats));
  return Json(std::move(out));
}

/// True when the raw query string carries `flag=1` (the API's convention
/// for boolean opt-ins, e.g. ?degraded=1&profile=1).
bool QueryFlag(const HttpRequest& req, std::string_view flag) {
  std::string needle = std::string(flag) + "=1";
  return req.query.find(needle) != std::string::npos;
}

/// Value of `key` in the request's `k=v&k=v` query string; nullopt when the
/// key is absent. No percent-decoding — the API's parameter values are
/// plain identifiers and integers.
std::optional<std::string> QueryParam(const HttpRequest& req,
                                      std::string_view key) {
  std::string_view query = req.query;
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    std::string_view pair = query.substr(pos, amp - pos);
    size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return std::nullopt;
}

/// Parses the optional `?threads=` parameter shared by /api/query,
/// /api/hunt, and /api/explain. Returns 0 when absent (keep the configured
/// default). Non-numeric, zero, negative, or oversized (> 1024) values are
/// rejected; values above the machine's hardware concurrency are capped
/// rather than rejected — results are byte-identical at any thread count,
/// so capping only changes timing.
Result<size_t> ThreadsParam(const HttpRequest& req) {
  std::optional<std::string> raw = QueryParam(req, "threads");
  if (!raw) return size_t{0};
  char* end = nullptr;
  unsigned long long value = std::strtoull(raw->c_str(), &end, 10);
  if (raw->empty() || end == nullptr || *end != '\0' ||
      raw->front() == '-' || value == 0 || value > 1024) {
    return Status::InvalidArgument(
        "threads must be an integer in [1, 1024], got '" + *raw + "'");
  }
  return std::min(static_cast<size_t>(value), ThreadPool::HardwareThreads());
}

/// Documented cap for list-style query parameters (`limit`, `count`): the
/// observability rings are bounded, so asking for more than this is a
/// client bug, not a bigger answer.
constexpr size_t kMaxListLimit = 10000;

/// Shared validation for optional non-negative integer query parameters
/// (/api/logs, /api/traces, /api/slow, /api/watch): absent returns
/// `fallback`, malformed (non-numeric, negative, empty, trailing garbage)
/// returns InvalidArgument for a consistent 400, and anything above `cap`
/// is clamped to it.
Result<size_t> BoundedParam(const HttpRequest& req, std::string_view key,
                            size_t fallback, size_t cap) {
  std::optional<std::string> raw = QueryParam(req, key);
  if (!raw) return fallback;
  char* end = nullptr;
  unsigned long long value = std::strtoull(raw->c_str(), &end, 10);
  if (raw->empty() || end == nullptr || *end != '\0' || raw->front() == '-' ||
      raw->front() == '+') {
    return Status::InvalidArgument(std::string(key) +
                                   " must be a non-negative integer, got '" +
                                   *raw + "'");
  }
  return std::min(static_cast<size_t>(value), cap);
}

/// Like BoundedParam but uncapped: unix-second timestamps (`start_s`,
/// `end_s`) are legitimate large integers. Same 400 semantics for
/// malformed values.
Result<uint64_t> U64Param(const HttpRequest& req, std::string_view key,
                          uint64_t fallback) {
  std::optional<std::string> raw = QueryParam(req, key);
  if (!raw) return fallback;
  char* end = nullptr;
  unsigned long long value = std::strtoull(raw->c_str(), &end, 10);
  if (raw->empty() || end == nullptr || *end != '\0' || raw->front() == '-' ||
      raw->front() == '+') {
    return Status::InvalidArgument(std::string(key) +
                                   " must be a non-negative integer, got '" +
                                   *raw + "'");
  }
  return static_cast<uint64_t>(value);
}

/// Shared validation for the `?format=` parameter (/api/metrics,
/// /api/profile, /api/explain): absent returns `fallback`, anything not in
/// `allowed` returns InvalidArgument for a consistent 400 listing the
/// accepted values.
Result<std::string> FormatParam(const HttpRequest& req,
                                std::initializer_list<std::string_view> allowed,
                                std::string_view fallback) {
  std::optional<std::string> raw = QueryParam(req, "format");
  if (!raw) return std::string(fallback);
  std::string choices;
  for (std::string_view candidate : allowed) {
    if (*raw == candidate) return *raw;
    if (!choices.empty()) choices += '|';
    choices += candidate;
  }
  return Status::InvalidArgument("unknown format '" + *raw + "' (" + choices +
                                 ")");
}

Json LogRecordToJson(const obs::LogRecord& record) {
  Json::Object out;
  out["seq"] = static_cast<double>(record.seq);
  out["unix_ms"] = static_cast<double>(record.unix_ms);
  out["trace_id"] = static_cast<double>(record.trace_id);
  out["level"] = std::string(obs::LogLevelName(record.level));
  out["subsystem"] = record.subsystem;
  out["message"] = record.message;
  if (!record.fields.empty()) {
    Json::Object fields;
    for (const auto& [key, value] : record.fields) fields[key] = value;
    out["fields"] = Json(std::move(fields));
  }
  if (record.suppressed > 0) {
    out["suppressed"] = static_cast<double>(record.suppressed);
  }
  return Json(std::move(out));
}

Json ProfileToJson(const obs::Profile& profile) {
  Json::Object out;
  out["total_ms"] = profile.total_ms;
  Json::Array stages;
  for (const obs::StageStat& s : profile.stages) {
    Json::Object stage;
    stage["stage"] = s.stage;
    stage["ms"] = s.ms;
    stage["count"] = static_cast<double>(s.count);
    stages.push_back(Json(std::move(stage)));
  }
  out["stages"] = Json(std::move(stages));
  return Json(std::move(out));
}

Json TraceToJson(const obs::Trace& trace, bool include_spans) {
  Json::Object out;
  out["id"] = static_cast<double>(trace.id);
  out["name"] = trace.name;
  out["started_unix_ms"] = static_cast<double>(trace.started_unix_ms);
  out["total_ms"] = trace.TotalMs();
  out["span_count"] = static_cast<double>(trace.spans.size());
  if (include_spans) {
    Json::Array spans;
    for (const obs::SpanData& s : trace.spans) {
      Json::Object span;
      span["id"] = static_cast<double>(s.id);
      span["parent"] = static_cast<double>(s.parent);
      span["name"] = s.name;
      span["start_ms"] = static_cast<double>(s.start_ns) / 1e6;
      span["duration_ms"] = s.DurationMs();
      if (!s.attrs.empty()) {
        Json::Object attrs;
        for (const auto& [key, value] : s.attrs) attrs[key] = value;
        span["attrs"] = Json(std::move(attrs));
      }
      if (!s.annotations.empty()) {
        Json::Array annotations;
        for (const std::string& a : s.annotations) annotations.push_back(a);
        span["annotations"] = Json(std::move(annotations));
      }
      spans.push_back(Json(std::move(span)));
    }
    out["spans"] = Json(std::move(spans));
  }
  return Json(std::move(out));
}

Json GraphToJson(const nlp::ThreatBehaviorGraph& graph) {
  Json::Object out;
  Json::Array nodes;
  for (const nlp::IocEntity& n : graph.nodes()) {
    Json::Object node;
    node["id"] = n.id;
    node["type"] = std::string(nlp::IocTypeName(n.type));
    node["text"] = n.text;
    nodes.push_back(Json(std::move(node)));
  }
  out["nodes"] = Json(std::move(nodes));
  Json::Array edges;
  for (const nlp::BehaviorEdge& e : graph.edges()) {
    Json::Object edge;
    edge["seq"] = e.sequence;
    edge["src"] = graph.node(e.src).text;
    edge["verb"] = e.verb;
    edge["dst"] = graph.node(e.dst).text;
    edges.push_back(Json(std::move(edge)));
  }
  out["edges"] = Json(std::move(edges));
  return Json(std::move(out));
}

constexpr const char* kIndexHtml = R"HTML(<!doctype html>
<html><head><meta charset="utf-8"><title>ThreatRaptor</title>
<style>
 body { font-family: sans-serif; margin: 2rem; max-width: 70rem; }
 textarea { width: 100%; font-family: monospace; }
 pre { background: #f4f4f4; padding: .8rem; overflow-x: auto; }
 h2 { margin-top: 2rem; }
 button { margin: .3rem .3rem .3rem 0; }
</style></head>
<body>
<h1>ThreatRaptor</h1>
<p>Threat hunting with OSCTI: paste a threat report and hunt, or write
TBQL directly.</p>

<h2>OSCTI report</h2>
<textarea id="report" rows="6">The process /bin/tar read the file /etc/passwd. /bin/tar then wrote the collected data to /tmp/data.tar. The process /bin/gzip read /tmp/data.tar and wrote the compressed archive /tmp/data.tar.gz. Finally, the process /usr/bin/curl read /tmp/data.tar.gz and sent the archive to the IP 161.35.10.8.</textarea><br>
<button onclick="post('/api/extract','report')">Extract behavior graph</button>
<button onclick="post('/api/hunt','report')">Hunt</button>

<h2>TBQL query</h2>
<textarea id="query" rows="4">proc p["%tar%"] read file f
return p, f</textarea><br>
<button onclick="post('/api/query','query')">Run</button>
<button onclick="post('/api/explain','query')">Explain</button>
<button onclick="fetch('/api/stats').then(r=>r.text()).then(show)">Stats</button>

<h2>Output</h2>
<pre id="out">(results appear here)</pre>
<script>
 function show(text) { document.getElementById('out').textContent = text; }
 function post(url, boxId) {
   fetch(url, {method: 'POST',
               body: document.getElementById(boxId).value})
     .then(r => r.text()).then(show)
     .catch(e => show('request failed: ' + e));
 }
</script>
</body></html>
)HTML";

/// GET /api/dashboard: one self-contained page (no external assets) of
/// sparkline stat tiles polling /api/metrics/range. Light/dark honor the
/// OS setting with a manual override; every panel carries a crosshair
/// tooltip and a table view so no value is hover- or color-gated.
constexpr const char* kDashboardHtml = R"HTML(<!doctype html>
<html><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>ThreatRaptor dashboard</title>
<style>
:root {
  color-scheme: light;
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #898781;
  --gridline: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
    --gridline: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --page: #0d0d0d; --surface-1: #1a1a19;
  --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
  --gridline: #2c2c2a; --baseline: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5;
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 1.5rem; background: var(--page);
  color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
}
header { display: flex; align-items: baseline; gap: 1rem; margin: 0 0 1rem; }
header h1 { font-size: 1.1rem; margin: 0; }
header .sub { color: var(--text-secondary); font-size: .85rem; }
header button {
  margin-left: auto; font: inherit; font-size: .8rem;
  color: var(--text-secondary); background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 6px; padding: .25rem .6rem;
  cursor: pointer;
}
.filters { display: flex; gap: .4rem; margin: 0 0 1rem; }
.filters button {
  font: inherit; font-size: .8rem; color: var(--text-secondary);
  background: transparent; border: 1px solid transparent; border-radius: 6px;
  padding: .25rem .6rem; cursor: pointer;
}
.filters button:hover { background: var(--surface-1); }
.filters button[aria-pressed="true"] {
  background: var(--surface-1); border-color: var(--border);
  color: var(--text-primary); font-weight: 600;
}
.grid {
  display: grid; gap: 1rem;
  grid-template-columns: repeat(auto-fill, minmax(17rem, 1fr));
}
.panel {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: .9rem .9rem .6rem; position: relative;
}
.panel .label { font-size: .8rem; color: var(--text-secondary); margin: 0; }
.panel .value {
  font-size: 1.5rem; font-weight: 650; margin: .1rem 0 .4rem;
  color: var(--text-primary); min-height: 1.3em;
}
.panel .value .unit {
  font-size: .8rem; font-weight: 400; color: var(--text-muted);
  margin-left: .15rem;
}
.panel svg { display: block; width: 100%; height: 64px; touch-action: none; }
.panel svg:focus { outline: 1px solid var(--series-1); outline-offset: 2px; }
.panel.stale svg { opacity: .45; }
.panel .err { font-size: .75rem; color: var(--text-muted); min-height: 1em; }
.tooltip {
  position: absolute; pointer-events: none; display: none; z-index: 2;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: .3rem .5rem; font-size: .75rem;
  box-shadow: 0 2px 8px rgba(0,0,0,.15); white-space: nowrap;
}
.tooltip .tv { font-weight: 650; color: var(--text-primary); }
.tooltip .tt { color: var(--text-secondary); }
details { margin-top: .3rem; }
summary { font-size: .72rem; color: var(--text-muted); cursor: pointer; }
table { border-collapse: collapse; font-size: .72rem; margin-top: .3rem;
        width: 100%; }
td, th { text-align: right; padding: .1rem .4rem;
         font-variant-numeric: tabular-nums;
         border-bottom: 1px solid var(--gridline); }
th { color: var(--text-secondary); font-weight: 600; }
</style></head>
<body>
<header>
  <h1>ThreatRaptor</h1>
  <span class="sub">live metrics &middot; refreshes every 5 s</span>
  <button id="theme" aria-label="toggle color scheme">auto</button>
</header>
<nav class="filters" id="ranges" aria-label="time range"></nav>
<main class="grid" id="grid"></main>
<script>
'use strict';
const PANELS = [
  {title: 'HTTP requests', metric: 'raptor_http_requests_total',
   agg: 'rate', unit: '/s'},
  {title: 'HTTP request p99', metric: 'raptor_http_request_ms',
   agg: 'p99', unit: 'ms'},
  {title: 'Hunt latency p99', metric: 'raptor_hunt_ms',
   agg: 'p99', unit: 'ms'},
  {title: 'Query latency p99', metric: 'raptor_query_ms',
   agg: 'p99', unit: 'ms'},
  {title: 'HTTP error burn (long)', metric: 'raptor_slo_long_burn',
   label: 'slo=http_error_rate', agg: 'avg', unit: '×'},
  {title: 'History memory', metric: 'raptor_history_bytes',
   agg: 'avg', unit: 'B'},
];
const RANGES = [
  {label: '5m', s: 300, step: 5}, {label: '15m', s: 900, step: 10},
  {label: '1h', s: 3600, step: 60}, {label: '6h', s: 21600, step: 120},
];
let range = RANGES[0];
const W = 280, H = 64, PAD = 6;
const SVGNS = 'http://www.w3.org/2000/svg';

function fmt(v, unit) {
  if (!isFinite(v)) return '–';
  if (unit === 'B') {
    const steps = ['B', 'KiB', 'MiB', 'GiB'];
    let i = 0;
    while (Math.abs(v) >= 1024 && i < steps.length - 1) { v /= 1024; i++; }
    return v.toFixed(v < 10 && i > 0 ? 1 : 0) + ' ' + steps[i];
  }
  const a = Math.abs(v);
  if (a >= 1e6) return (v / 1e6).toFixed(1) + 'M';
  if (a >= 1e4) return (v / 1e3).toFixed(1) + 'k';
  if (a >= 100 || Number.isInteger(v)) return v.toFixed(0);
  if (a >= 1) return v.toFixed(2);
  return v.toPrecision(2);
}
function clock(tS) {
  return new Date(tS * 1000).toLocaleTimeString([], {hour12: false});
}
function el(tag, cls) {
  const node = document.createElement(tag);
  if (cls) node.className = cls;
  return node;
}
function svgEl(tag) { return document.createElementNS(SVGNS, tag); }

function buildPanel(spec) {
  const panel = el('section', 'panel');
  const label = el('p', 'label');
  label.textContent = spec.title;
  const value = el('p', 'value');
  const svg = svgEl('svg');
  svg.setAttribute('viewBox', `0 0 ${W} ${H}`);
  svg.setAttribute('preserveAspectRatio', 'none');
  svg.setAttribute('tabindex', '0');
  svg.setAttribute('role', 'img');
  svg.setAttribute('aria-label', spec.title + ' sparkline');
  const err = el('p', 'err');
  const tooltip = el('div', 'tooltip');
  const details = el('details');
  const summary = el('summary');
  summary.textContent = 'data table';
  details.appendChild(summary);
  const table = el('table');
  details.appendChild(table);
  panel.append(label, value, svg, err, tooltip, details);
  const state = {spec, panel, value, svg, err, tooltip, table, points: []};
  svg.addEventListener('pointermove', e => hover(state, e));
  svg.addEventListener('pointerleave', () => hide(state));
  svg.addEventListener('focus', () => hoverIndex(state, state.points.length - 1));
  svg.addEventListener('blur', () => hide(state));
  return state;
}

function scales(points, startS, endS) {
  let lo = Infinity, hi = -Infinity;
  for (const p of points) { lo = Math.min(lo, p[1]); hi = Math.max(hi, p[1]); }
  if (!points.length) { lo = 0; hi = 1; }
  if (hi === lo) { hi += 1; lo = Math.min(lo, 0); }
  const x = t => PAD + (t - startS) / Math.max(1, endS - startS) * (W - 2 * PAD);
  const y = v => H - PAD - (v - lo) / (hi - lo) * (H - 2 * PAD);
  return {x, y};
}

function render(state, points, startS, endS) {
  const {svg} = state;
  while (svg.firstChild) svg.removeChild(svg.firstChild);
  const sc = scales(points, startS, endS);
  state.sc = sc; state.points = points;
  state.startS = startS; state.endS = endS;
  const base = svgEl('line');
  base.setAttribute('x1', PAD); base.setAttribute('x2', W - PAD);
  base.setAttribute('y1', H - PAD); base.setAttribute('y2', H - PAD);
  base.setAttribute('stroke', 'var(--baseline)');
  base.setAttribute('stroke-width', '1');
  svg.appendChild(base);
  if (!points.length) return;
  let line = '', area = '';
  points.forEach((p, i) => {
    const px = sc.x(p[0]).toFixed(1), py = sc.y(p[1]).toFixed(1);
    line += (i ? 'L' : 'M') + px + ' ' + py;
    area += (i ? 'L' : `M${px} ${H - PAD}L`) + px + ' ' + py;
  });
  area += `L${sc.x(points[points.length - 1][0]).toFixed(1)} ${H - PAD}Z`;
  const fill = svgEl('path');
  fill.setAttribute('d', area);
  fill.setAttribute('fill', 'var(--series-1)');
  fill.setAttribute('opacity', '0.1');
  svg.appendChild(fill);
  const stroke = svgEl('path');
  stroke.setAttribute('d', line);
  stroke.setAttribute('fill', 'none');
  stroke.setAttribute('stroke', 'var(--series-1)');
  stroke.setAttribute('stroke-width', '2');
  stroke.setAttribute('stroke-linejoin', 'round');
  stroke.setAttribute('stroke-linecap', 'round');
  svg.appendChild(stroke);
  const last = points[points.length - 1];
  const dot = svgEl('circle');
  dot.setAttribute('cx', sc.x(last[0]));
  dot.setAttribute('cy', sc.y(last[1]));
  dot.setAttribute('r', '4');
  dot.setAttribute('fill', 'var(--series-1)');
  dot.setAttribute('stroke', 'var(--surface-1)');
  dot.setAttribute('stroke-width', '2');
  svg.appendChild(dot);
  const cross = svgEl('line');
  cross.setAttribute('stroke', 'var(--gridline)');
  cross.setAttribute('stroke-width', '1');
  cross.setAttribute('y1', PAD); cross.setAttribute('y2', H - PAD);
  cross.style.display = 'none';
  svg.appendChild(cross);
  const mark = svgEl('circle');
  mark.setAttribute('r', '3.5');
  mark.setAttribute('fill', 'var(--series-1)');
  mark.setAttribute('stroke', 'var(--surface-1)');
  mark.setAttribute('stroke-width', '2');
  mark.style.display = 'none';
  svg.appendChild(mark);
  state.cross = cross; state.mark = mark;
}

function hover(state, event) {
  if (!state.points.length) return;
  const rect = state.svg.getBoundingClientRect();
  const tS = state.startS +
      (event.clientX - rect.left) / rect.width * (state.endS - state.startS);
  let best = 0, bestD = Infinity;
  state.points.forEach((p, i) => {
    const d = Math.abs(p[0] - tS);
    if (d < bestD) { bestD = d; best = i; }
  });
  hoverIndex(state, best);
}
function hoverIndex(state, i) {
  if (i < 0 || !state.points.length || !state.cross) return;
  const p = state.points[i];
  const px = state.sc.x(p[0]), py = state.sc.y(p[1]);
  state.cross.setAttribute('x1', px); state.cross.setAttribute('x2', px);
  state.cross.style.display = '';
  state.mark.setAttribute('cx', px); state.mark.setAttribute('cy', py);
  state.mark.style.display = '';
  const tip = state.tooltip;
  while (tip.firstChild) tip.removeChild(tip.firstChild);
  const tv = el('span', 'tv');
  tv.textContent = fmt(p[1], state.spec.unit) +
      (state.spec.unit ? ' ' + state.spec.unit : '');
  const tt = el('span', 'tt');
  tt.textContent = ' · ' + clock(p[0]);
  tip.append(tv, tt);
  tip.style.display = 'block';
  const rect = state.svg.getBoundingClientRect();
  const frac = (px - PAD) / (W - 2 * PAD);
  tip.style.left =
      Math.max(0, Math.min(rect.width - 110, frac * rect.width - 40)) + 'px';
  tip.style.top = (state.svg.offsetTop - 8) + 'px';
}
function hide(state) {
  state.tooltip.style.display = 'none';
  if (state.cross) state.cross.style.display = 'none';
  if (state.mark) state.mark.style.display = 'none';
}

function renderTable(state) {
  const table = state.table;
  while (table.firstChild) table.removeChild(table.firstChild);
  const head = el('tr');
  for (const text of ['time', state.spec.unit || 'value']) {
    const th = el('th');
    th.textContent = text;
    head.appendChild(th);
  }
  table.appendChild(head);
  for (const p of state.points.slice(-12).reverse()) {
    const row = el('tr');
    const time = el('td');
    time.textContent = clock(p[0]);
    const val = el('td');
    val.textContent = fmt(p[1], state.spec.unit);
    row.append(time, val);
    table.appendChild(row);
  }
}

async function refresh(state) {
  const spec = state.spec;
  const endS = Math.floor(Date.now() / 1000);
  const startS = endS - range.s;
  const params = new URLSearchParams({
    name: spec.metric, agg: spec.agg, start_s: startS, end_s: endS,
    step_s: range.step,
  });
  if (spec.label) params.set('label', spec.label);
  try {
    const res = await fetch('/api/metrics/range?' + params);
    const doc = await res.json();
    if (!res.ok) throw new Error(doc.error || res.status);
    const points = (doc.series[0] || {points: []}).points;
    render(state, points, startS, endS);
    renderTable(state);
    const last = points[points.length - 1];
    while (state.value.firstChild) state.value.removeChild(state.value.firstChild);
    state.value.appendChild(document.createTextNode(
        last ? fmt(last[1], spec.unit) : '–'));
    const unit = el('span', 'unit');
    unit.textContent = spec.unit;
    state.value.appendChild(unit);
    state.err.textContent = '';
    state.panel.classList.remove('stale');
  } catch (e) {
    state.err.textContent = String(e.message || e);
    state.panel.classList.add('stale');
  }
}

const grid = document.getElementById('grid');
const states = PANELS.map(spec => {
  const state = buildPanel(spec);
  grid.appendChild(state.panel);
  return state;
});
const nav = document.getElementById('ranges');
RANGES.forEach(r => {
  const b = el('button');
  b.textContent = r.label;
  b.setAttribute('aria-pressed', String(r === range));
  b.addEventListener('click', () => {
    range = r;
    nav.querySelectorAll('button').forEach(btn =>
        btn.setAttribute('aria-pressed', String(btn === b)));
    states.forEach(refresh);
  });
  nav.appendChild(b);
});
const themeBtn = document.getElementById('theme');
const THEMES = ['auto', 'light', 'dark'];
let theme = 0;
themeBtn.addEventListener('click', () => {
  theme = (theme + 1) % THEMES.length;
  themeBtn.textContent = THEMES[theme];
  if (theme === 0) delete document.documentElement.dataset.theme;
  else document.documentElement.dataset.theme = THEMES[theme];
});
states.forEach(refresh);
setInterval(() => states.forEach(refresh), 5000);
</script>
</body></html>
)HTML";

/// The closed set of reason labels the engine attaches to
/// raptor_query_truncations_total.
constexpr const char* kTruncationReasons[] = {"deadline", "max_graph_edges",
                                              "row_cap"};

/// Count plus p50/p95/p99 estimates for one latency histogram (see
/// obs::HistogramQuantile for the accuracy contract).
Json QuantilesJson(const obs::Histogram& histogram) {
  Json::Object out;
  out["count"] = static_cast<double>(histogram.Count());
  out["p50"] = obs::HistogramQuantile(histogram, 0.50);
  out["p95"] = obs::HistogramQuantile(histogram, 0.95);
  out["p99"] = obs::HistogramQuantile(histogram, 0.99);
  return Json(std::move(out));
}

/// The /api/stats document, derived entirely from the obs::Registry (one
/// source of truth, also the scrape) plus wall clock. Shared with the
/// diagnostic bundle.
Json StatsJson(const ThreatRaptor* system,
               std::chrono::steady_clock::time_point started) {
  obs::ResourceTracker::Default().Publish();
  obs::Registry& registry = obs::Registry::Default();
  Json::Object stats;
  stats["events"] =
      static_cast<double>(registry.GaugeValue("raptor_storage_events"));
  stats["entities"] =
      static_cast<double>(registry.GaugeValue("raptor_storage_entities"));
  stats["cpr_reduction"] = system->cpr_stats().ReductionRatio();
  stats["uptime_s"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  stats["http_requests"] =
      static_cast<double>(registry.CounterValue("raptor_http_requests_total"));
  stats["hunts"] =
      static_cast<double>(registry.CounterValue("raptor_hunts_total"));
  stats["hunts_degraded"] = static_cast<double>(
      registry.CounterValue("raptor_hunts_degraded_total"));
  stats["queries"] =
      static_cast<double>(registry.CounterValue("raptor_queries_total"));
  // The truncation counter is labeled by reason; the reasons the engine
  // emits are a closed set.
  uint64_t truncations = 0;
  for (const char* reason : kTruncationReasons) {
    truncations += registry.CounterValue("raptor_query_truncations_total",
                                         {{"reason", reason}});
  }
  stats["queries_truncated"] = static_cast<double>(truncations);
  stats["log_records"] = static_cast<double>(
      obs::Logger::Default().records_committed());
  // Shared thread-pool activity (the raptor_pool_* metric family).
  stats["pool_threads"] =
      static_cast<double>(registry.GaugeValue("raptor_pool_threads"));
  stats["pool_busy_workers"] =
      static_cast<double>(registry.GaugeValue("raptor_pool_busy_workers"));
  stats["pool_tasks"] =
      static_cast<double>(registry.CounterValue("raptor_pool_tasks_total"));
  stats["pool_parallel_regions"] = static_cast<double>(
      registry.CounterValue("raptor_pool_parallel_regions_total"));
  // Columnar access paths and the TBQL plan cache (ROADMAP item 2):
  // segment pruning by reason, plan-cache effectiveness, and how many
  // patterns rode shared segment scans.
  Json::Object plan_cache;
  plan_cache["hits"] = static_cast<double>(
      registry.CounterValue("raptor_plan_cache_hits_total"));
  plan_cache["misses"] = static_cast<double>(
      registry.CounterValue("raptor_plan_cache_misses_total"));
  plan_cache["evictions"] = static_cast<double>(
      registry.CounterValue("raptor_plan_cache_evictions_total"));
  stats["plan_cache"] = Json(std::move(plan_cache));
  Json::Object pruned;
  pruned["zone_map"] = static_cast<double>(registry.CounterValue(
      "raptor_segments_pruned_total", {{"reason", "zone_map"}}));
  pruned["bloom"] = static_cast<double>(registry.CounterValue(
      "raptor_segments_pruned_total", {{"reason", "bloom"}}));
  stats["segments_pruned"] = Json(std::move(pruned));
  if (const obs::Histogram* h =
          registry.FindHistogram("raptor_shared_scan_patterns")) {
    Json::Object shared;
    shared["scans"] = static_cast<double>(h->Count());
    shared["patterns"] = h->Sum();
    stats["shared_scans"] = Json(std::move(shared));
  }
  // Per-component memory accounting (the raptor_mem_* gauge family).
  Json::Object mem;
  obs::ResourceTracker& tracker = obs::ResourceTracker::Default();
  for (size_t i = 0; i < obs::kNumComponents; ++i) {
    obs::Component component = static_cast<obs::Component>(i);
    Json::Object entry;
    entry["live_bytes"] =
        static_cast<double>(tracker.LiveBytes(component));
    entry["peak_bytes"] =
        static_cast<double>(tracker.PeakBytes(component));
    mem[std::string(obs::ComponentName(component))] =
        Json(std::move(entry));
  }
  stats["mem"] = Json(std::move(mem));
  stats["slow_journal_entries"] =
      static_cast<double>(obs::SlowJournal::Default().Snapshot().size());
  stats["misestimate_journal_entries"] = static_cast<double>(
      obs::MisestimateJournal::Default().Snapshot().size());
  stats["build"] = BuildInfoJson();
  // Latency quantiles so SLO targets are inspectable without scraping the
  // Prometheus text. Hunt/query histograms are pre-registered by
  // RegisterThreatRaptorApi; HTTP latency is per route.
  Json::Object latency;
  if (const obs::Histogram* h = registry.FindHistogram("raptor_hunt_ms")) {
    latency["hunt_ms"] = QuantilesJson(*h);
  }
  if (const obs::Histogram* h = registry.FindHistogram("raptor_query_ms")) {
    latency["query_ms"] = QuantilesJson(*h);
  }
  Json::Object routes;
  for (const auto& [labels, histogram] :
       registry.HistogramChildren("raptor_http_request_ms")) {
    std::string route;
    for (const auto& [key, value] : labels) {
      if (key == "route") route = value;
    }
    if (route.empty()) continue;
    routes[route] = QuantilesJson(*histogram);
  }
  latency["http_request_ms"] = Json(std::move(routes));
  stats["latency"] = Json(std::move(latency));
  return Json(std::move(stats));
}

/// One metric family as structured JSON (shared by /api/metrics?format=json
/// and the filtered /api/watch frames).
Json FamilyToJson(const obs::FamilySnapshot& family) {
  Json::Object f;
  f["name"] = family.name;
  f["type"] = family.type;
  if (!family.help.empty()) f["help"] = family.help;
  Json::Array samples;
  for (const obs::MetricSample& sample : family.samples) {
    Json::Object s;
    if (!sample.labels.empty()) {
      Json::Object labels;
      for (const auto& [key, value] : sample.labels) labels[key] = value;
      s["labels"] = Json(std::move(labels));
    }
    if (family.type == "histogram") {
      Json::Array buckets;
      for (const auto& [bound, cumulative] : sample.buckets) {
        Json::Object bucket;
        bucket["le"] = bound;
        bucket["count"] = static_cast<double>(cumulative);
        buckets.push_back(Json(std::move(bucket)));
      }
      Json::Object inf;
      inf["le"] = std::string("+Inf");
      inf["count"] = static_cast<double>(sample.count);
      buckets.push_back(Json(std::move(inf)));
      s["buckets"] = Json(std::move(buckets));
      s["sum"] = sample.sum;
      s["count"] = static_cast<double>(sample.count);
    } else {
      s["value"] = sample.value;
    }
    samples.push_back(Json(std::move(s)));
  }
  f["samples"] = Json(std::move(samples));
  return Json(std::move(f));
}

/// JSON mirror of the Prometheus exposition (/api/metrics?format=json):
/// same families, children, and values as RenderPrometheus, structured.
Json MetricsJson() {
  Json::Array families;
  for (const obs::FamilySnapshot& family :
       obs::Registry::Default().Snapshot()) {
    families.push_back(FamilyToJson(family));
  }
  Json::Object out;
  out["families"] = Json(std::move(families));
  return Json(std::move(out));
}

/// The alerts document from the engine's current standing, without
/// evaluating (the incident bundle hook uses this so capture freezes the
/// state that fired rather than advancing it).
Json AlertsSnapshotJson() {
  obs::SloEngine& engine = obs::SloEngine::Default();
  Json::Object out;
  out["evaluator_running"] = engine.running();
  Json::Array alerts;
  for (const obs::AlertStatus& status : engine.Snapshot()) {
    Json::Object alert;
    alert["slo"] = status.name;
    alert["description"] = status.description;
    alert["state"] = std::string(obs::AlertStateName(status.state));
    alert["objective"] = status.objective;
    alert["burn_threshold"] = status.burn_threshold;
    alert["short_window_s"] = status.short_window_s;
    alert["long_window_s"] = status.long_window_s;
    alert["short_burn"] = status.short_burn;
    alert["long_burn"] = status.long_burn;
    alert["error_ratio"] = status.error_ratio;
    alert["state_since_unix_ms"] =
        static_cast<double>(status.state_since_unix_ms);
    alert["samples"] = static_cast<double>(status.samples);
    alerts.push_back(Json(std::move(alert)));
  }
  out["alerts"] = Json(std::move(alerts));
  Json::Array transitions;
  for (const obs::AlertTransition& t : engine.Transitions()) {
    Json::Object transition;
    transition["slo"] = t.slo;
    transition["from"] = std::string(obs::AlertStateName(t.from));
    transition["to"] = std::string(obs::AlertStateName(t.to));
    transition["unix_ms"] = static_cast<double>(t.unix_ms);
    transition["short_burn"] = t.short_burn;
    transition["long_burn"] = t.long_burn;
    transitions.push_back(Json(std::move(transition)));
  }
  out["transitions"] = Json(std::move(transitions));
  return Json(std::move(out));
}

/// The /api/alerts document; shared with the diagnostic bundle. Evaluates
/// synchronously first (idempotent per clock timestamp) so the answer —
/// and tests driving the state machine — never waits on the background
/// evaluator's tick.
Json AlertsJson() {
  obs::SloEngine::Default().EvaluateNow();
  return AlertsSnapshotJson();
}

/// One frozen history window (incident capture), points as [t_s, value].
Json SeriesWindowJson(const obs::SeriesWindow& window) {
  Json::Object out;
  out["name"] = window.name;
  if (!window.labels.empty()) {
    Json::Object labels;
    for (const auto& [key, value] : window.labels) labels[key] = value;
    out["labels"] = Json(std::move(labels));
  }
  out["kind"] = std::string(obs::SeriesKindName(window.kind));
  Json::Array points;
  for (const obs::RangePoint& p : window.points) {
    Json::Array point;
    point.push_back(static_cast<double>(p.t_ms) / 1000.0);
    point.push_back(p.value);
    points.push_back(Json(std::move(point)));
  }
  out["points"] = Json(std::move(points));
  return Json(std::move(out));
}

/// One captured incident. `include_bundle` embeds the frozen debug bundle
/// (parsed back into structure); the bundle's own "incidents" section omits
/// it to avoid quadratic nesting.
Json IncidentToJson(const obs::Incident& incident, bool include_bundle) {
  Json::Object out;
  out["id"] = static_cast<double>(incident.id);
  out["slo"] = incident.slo;
  out["fired_at_unix_ms"] = static_cast<double>(incident.fired_at_ms);
  out["resolved"] = incident.resolved_at_ms != 0;
  if (incident.resolved_at_ms != 0) {
    out["resolved_at_unix_ms"] = static_cast<double>(incident.resolved_at_ms);
  }
  out["short_burn"] = incident.short_burn;
  out["long_burn"] = incident.long_burn;
  out["burn_threshold"] = incident.burn_threshold;
  if (!incident.metric.empty()) out["metric"] = incident.metric;
  Json::Array windows;
  for (const obs::SeriesWindow& window : incident.windows) {
    windows.push_back(SeriesWindowJson(window));
  }
  out["history"] = Json(std::move(windows));
  if (include_bundle && !incident.bundle_json.empty()) {
    Result<Json> bundle = Json::Parse(incident.bundle_json);
    // A hook is free to return anything; an unparsable bundle degrades to
    // the raw text rather than dropping the capture.
    if (bundle.ok()) {
      out["bundle"] = *bundle;
    } else {
      out["bundle_text"] = incident.bundle_json;
    }
  }
  return Json(std::move(out));
}

/// The /api/incidents document; shared with the diagnostic bundle (which
/// passes include_bundles=false).
Json IncidentsJson(size_t limit, bool include_bundles) {
  obs::IncidentJournal& journal = obs::IncidentJournal::Default();
  Json::Array incidents;
  for (const obs::Incident& incident : journal.Snapshot(limit)) {
    incidents.push_back(IncidentToJson(incident, include_bundles));
  }
  Json::Object out;
  out["incidents"] = Json(std::move(incidents));
  out["capacity"] = static_cast<double>(journal.options().max_incidents);
  out["window_s"] = journal.options().window_s;
  return Json(std::move(out));
}

/// The /api/metrics/range answer: per-series aggregated points plus the
/// effective tier/step so clients can see which resolution served them.
Json RangeResultJson(const obs::RangeRequest& request,
                     const obs::RangeResult& result) {
  Json::Object out;
  out["name"] = request.name;
  out["agg"] = std::string(obs::RangeAggName(request.agg));
  out["kind"] = std::string(obs::SeriesKindName(result.kind));
  out["start_s"] = static_cast<double>(request.start_ms) / 1000.0;
  out["end_s"] = static_cast<double>(request.end_ms) / 1000.0;
  out["step_s"] = static_cast<double>(result.step_ms) / 1000.0;
  out["tier"] = static_cast<double>(result.tier);
  out["tier_interval_s"] = result.tier_interval_s;
  Json::Array series;
  for (const obs::RangeSeries& s : result.series) {
    Json::Object entry;
    if (!s.labels.empty()) {
      Json::Object labels;
      for (const auto& [key, value] : s.labels) labels[key] = value;
      entry["labels"] = Json(std::move(labels));
    }
    Json::Array points;
    for (const obs::RangePoint& p : s.points) {
      Json::Array point;
      point.push_back(static_cast<double>(p.t_ms) / 1000.0);
      point.push_back(p.value);
      points.push_back(Json(std::move(point)));
    }
    entry["points"] = Json(std::move(points));
    series.push_back(Json(std::move(entry)));
  }
  out["series"] = Json(std::move(series));
  return Json(std::move(out));
}

/// The /api/profile document for ?format=json; the folded text is
/// Profiler::RenderFolded.
Json ProfileSnapshotToJson(const obs::ProfileSnapshot& snapshot) {
  Json::Object out;
  out["duration_s"] = snapshot.duration_s;
  out["hz"] = snapshot.hz;
  out["samples"] = static_cast<double>(snapshot.total_samples);
  out["queue_wait_ms"] = snapshot.queue_wait_ms;
  out["queue_run_ms"] = snapshot.queue_run_ms;
  Json::Array stacks;
  for (const auto& [stack, count] : snapshot.folded) {
    Json::Object entry;
    entry["stack"] = stack;
    entry["samples"] = static_cast<double>(count);
    stacks.push_back(Json(std::move(entry)));
  }
  out["stacks"] = Json(std::move(stacks));
  return Json(std::move(out));
}

Json SlowEntryToJson(const obs::SlowEntry& entry) {
  Json::Object out;
  out["id"] = static_cast<double>(entry.id);
  out["unix_ms"] = static_cast<double>(entry.unix_ms);
  out["kind"] = entry.kind;
  out["query"] = entry.query;
  out["trigger"] = entry.trigger;
  out["total_ms"] = entry.total_ms;
  out["bytes"] = static_cast<double>(entry.bytes);
  out["truncated"] = entry.truncated;
  Json::Array ops;
  for (const obs::SlowOperator& op : entry.ops) {
    Json::Object step;
    step["name"] = op.name;
    step["backend"] = op.backend;
    step["access"] = op.access;
    step["rows_examined"] = static_cast<double>(op.rows_examined);
    step["rows_emitted"] = static_cast<double>(op.rows_emitted);
    step["bytes"] = static_cast<double>(op.bytes);
    step["ms"] = op.ms;
    ops.push_back(Json(std::move(step)));
  }
  out["operators"] = Json(std::move(ops));
  if (!entry.profile.empty()) {
    out["profile"] = ProfileToJson(entry.profile);
  }
  return Json(std::move(out));
}

Json MisestimateEntryToJson(const obs::MisestimateEntry& entry) {
  Json::Object out;
  out["id"] = static_cast<double>(entry.id);
  out["unix_ms"] = static_cast<double>(entry.unix_ms);
  out["kind"] = entry.kind;
  out["query"] = entry.query;
  out["worst_q_error"] = entry.worst_q_error;
  out["stats_snapshot"] = entry.stats_snapshot;
  Json::Array ops;
  for (const obs::MisestimateOperator& op : entry.ops) {
    Json::Object step;
    step["name"] = op.name;
    step["backend"] = op.backend;
    step["est_rows"] = op.est_rows;
    step["actual_rows"] = static_cast<double>(op.actual_rows);
    step["q_error"] = op.q_error;
    ops.push_back(Json(std::move(step)));
  }
  out["operators"] = Json(std::move(ops));
  return Json(std::move(out));
}

/// The /api/datastats document: per-table/per-column statistics (row
/// counts, NDV, heavy hitters, min/max, time histograms) plus per-entity
/// graph degree distributions — everything the cardinality estimator
/// reads. Shared with the diagnostic bundle.
Json DataStatsJson(const ThreatRaptor* system) {
  Json::Object out;
  out["storage_ready"] = system->storage_ready();
  if (!system->storage_ready()) return Json(std::move(out));

  const rel::RelationalDatabase& rel = system->relational();
  out["statistics_enabled"] = rel.statistics_enabled();
  out["statistics_bytes"] = static_cast<double>(rel.StatisticsBytes());
  Json::Array tables;
  for (const stats::TableStatistics* table : rel.AllStatistics()) {
    Json::Object t;
    t["name"] = table->name();
    t["rows"] = static_cast<double>(table->RowCount());
    Json::Array columns;
    for (size_t i = 0; i < table->num_columns(); ++i) {
      const stats::ColumnStatistics& col = table->column(i);
      Json::Object c;
      c["name"] = col.name();
      c["type"] = std::string(col.type() == rel::ColumnType::kInt64
                                  ? "int64"
                                  : "string");
      c["ndv"] = col.Ndv();
      if (col.Min()) c["min"] = col.Min()->ToString();
      if (col.Max()) c["max"] = col.Max()->ToString();
      Json::Array hitters;
      for (const auto& hh : col.HeavyHitters()) {
        Json::Object h;
        h["value"] = hh.key;
        h["count"] = static_cast<double>(hh.count);
        h["error"] = static_cast<double>(hh.error);
        hitters.push_back(Json(std::move(h)));
      }
      if (!hitters.empty()) c["heavy_hitters"] = Json(std::move(hitters));
      if (const stats::EquiDepthHistogram* hist = col.Histogram()) {
        if (hist->Count() > 0) {
          // Bucket masses count the sketched stream; scale to table rows
          // so the histogram reads in the same unit as `rows`.
          const double scale = col.SketchScale();
          Json::Array buckets;
          for (const auto& b : hist->Buckets()) {
            Json::Object bucket;
            bucket["lo"] = static_cast<double>(b.lo);
            bucket["hi"] = static_cast<double>(b.hi);
            bucket["est_count"] = static_cast<double>(b.est_count) * scale;
            buckets.push_back(Json(std::move(bucket)));
          }
          c["histogram"] = Json(std::move(buckets));
        }
      }
      columns.push_back(Json(std::move(c)));
    }
    t["columns"] = Json(std::move(columns));
    tables.push_back(Json(std::move(t)));
  }
  out["tables"] = Json(std::move(tables));

  const graph::GraphStore& graph = system->graph();
  Json::Object degrees;
  static constexpr audit::EntityType kTypes[] = {audit::EntityType::kFile,
                                                 audit::EntityType::kProcess,
                                                 audit::EntityType::kNetwork};
  static constexpr const char* kTypeNames[] = {"file", "process", "network"};
  auto degree_json = [](const stats::DegreeDistribution& d) {
    Json::Object out;
    out["nodes"] = static_cast<double>(d.Nodes());
    out["total_degree"] = static_cast<double>(d.TotalDegree());
    out["max_degree"] = static_cast<double>(d.MaxDegree());
    out["avg_degree"] = d.AvgDegree();
    Json::Array buckets;
    for (const auto& b : d.Buckets()) {
      Json::Object bucket;
      bucket["lo"] = static_cast<double>(b.lo);
      bucket["hi"] = static_cast<double>(b.hi);
      bucket["nodes"] = static_cast<double>(b.nodes);
      buckets.push_back(Json(std::move(bucket)));
    }
    out["buckets"] = Json(std::move(buckets));
    return Json(std::move(out));
  };
  for (size_t i = 0; i < 3; ++i) {
    Json::Object per_type;
    per_type["out"] = degree_json(graph.OutDegreeStatistics(kTypes[i]));
    per_type["in"] = degree_json(graph.InDegreeStatistics(kTypes[i]));
    degrees[kTypeNames[i]] = Json(std::move(per_type));
  }
  out["degree_distributions"] = Json(std::move(degrees));
  return Json(std::move(out));
}

/// The build block shared by /api/stats and /api/debug/bundle.
Json BuildInfoJson() {
  Json::Object build;
  build["name"] = std::string("ThreatRaptor");
  build["version"] = std::string(BuildVersion());
  build["git_sha"] = std::string(BuildGitSha());
  build["compiler"] = std::string(BuildCompiler());
  build["built"] = std::string(__DATE__ " " __TIME__);
  return Json(std::move(build));
}

/// Serializes the live option set (every knob ThreatRaptorOptions carries)
/// for the diagnostic bundle.
Json OptionsToJson(const ThreatRaptorOptions& options) {
  Json::Object nlp;
  nlp["enable_ioc_protection"] = options.nlp.enable_ioc_protection;
  nlp["enable_coreference"] = options.nlp.enable_coreference;
  nlp["enable_ioc_merge"] = options.nlp.enable_ioc_merge;
  nlp["enable_tree_simplification"] = options.nlp.enable_tree_simplification;
  nlp["merge_dice_threshold"] = options.nlp.merge_dice_threshold;
  nlp["merge_cosine_threshold"] = options.nlp.merge_cosine_threshold;

  Json::Object synthesis;
  synthesis["use_path_patterns"] = options.synthesis.use_path_patterns;
  synthesis["path_min_hops"] =
      static_cast<double>(options.synthesis.path_min_hops);
  synthesis["path_max_hops"] =
      static_cast<double>(options.synthesis.path_max_hops);
  synthesis["like_match_files"] = options.synthesis.like_match_files;
  if (options.synthesis.window) {
    synthesis["window_start"] =
        static_cast<double>(options.synthesis.window->first);
    synthesis["window_end"] =
        static_cast<double>(options.synthesis.window->second);
  }

  Json::Object execution;
  execution["use_pruning_scores"] = options.execution.use_pruning_scores;
  execution["propagate_constraints"] =
      options.execution.propagate_constraints;
  execution["max_rows"] = static_cast<double>(options.execution.max_rows);
  execution["deadline_ms"] =
      static_cast<double>(options.execution.deadline_ms);
  execution["max_graph_edges"] =
      static_cast<double>(options.execution.max_graph_edges);
  execution["collect_profile"] = options.execution.collect_profile;
  execution["num_threads"] =
      static_cast<double>(options.execution.num_threads);

  Json::Object hunt;
  hunt["allow_degraded"] = options.hunt.allow_degraded;
  hunt["collect_profile"] = options.hunt.collect_profile;
  hunt["num_threads"] = static_cast<double>(options.hunt.num_threads);

  Json::Object profiler;
  profiler["enabled"] = options.profiler.enabled;
  profiler["hz"] = options.profiler.hz;

  Json::Object history;
  history["enabled"] = options.history.enabled;
  history["sample_interval_s"] = options.history.sample_interval_s;
  history["max_series"] = static_cast<double>(options.history.max_series);
  Json::Array tiers;
  for (const obs::HistoryTier& tier : options.history.tiers) {
    Json::Object entry;
    entry["interval_s"] = tier.interval_s;
    entry["retention_s"] = tier.retention_s;
    tiers.push_back(Json(std::move(entry)));
  }
  history["tiers"] = Json(std::move(tiers));

  Json::Object slo;
  slo["enabled"] = options.slo.enabled;
  slo["eval_interval_ms"] = options.slo.eval_interval_ms;
  slo["short_window_s"] = options.slo.short_window_s;
  slo["long_window_s"] = options.slo.long_window_s;
  slo["burn_threshold"] = options.slo.burn_threshold;
  slo["pending_for_s"] = options.slo.pending_for_s;
  slo["hunt_p99_target_ms"] = options.slo.hunt_p99_target_ms;
  slo["hunt_latency_objective"] = options.slo.hunt_latency_objective;
  slo["http_error_objective"] = options.slo.http_error_objective;
  slo["degraded_hunt_objective"] = options.slo.degraded_hunt_objective;
  slo["memory_budget_bytes"] =
      static_cast<double>(options.slo.memory_budget_bytes);
  slo["memory_burn_threshold"] = options.slo.memory_burn_threshold;

  Json::Object out;
  out["nlp"] = Json(std::move(nlp));
  out["synthesis"] = Json(std::move(synthesis));
  out["execution"] = Json(std::move(execution));
  out["hunt"] = Json(std::move(hunt));
  out["profiler"] = Json(std::move(profiler));
  out["history"] = Json(std::move(history));
  out["slo"] = Json(std::move(slo));
  out["apply_cpr"] = options.apply_cpr;
  out["cpr_max_merge_gap_ns"] =
      static_cast<double>(options.cpr.max_merge_gap_ns);
  return Json(std::move(out));
}

/// Machine-readable EXPLAIN ANALYZE (the ?format=json branch of
/// /api/explain): the same facts as engine::ExplainAnalyze, structured.
Json ExplainToJson(const tbql::Query& query,
                   const engine::QueryResult& result) {
  const engine::ExecutionStats& stats = result.stats;
  Json::Object out;
  Json::Array steps;
  for (size_t i = 0; i < stats.schedule.size(); ++i) {
    Json::Object step;
    step["step"] = static_cast<double>(i + 1);
    step["pattern"] = stats.schedule[i];
    bool graph_backend =
        i < stats.pattern_used_graph.size() && stats.pattern_used_graph[i];
    step["backend"] = std::string(graph_backend ? "graph" : "relational");
    step["score"] =
        i < stats.pattern_scores.size() ? stats.pattern_scores[i] : 0.0;
    step["constrained"] = i < stats.pattern_was_constrained.size() &&
                          stats.pattern_was_constrained[i];
    size_t matches = i < stats.matches_per_pattern.size()
                         ? stats.matches_per_pattern[i]
                         : 0;
    step["matches"] = static_cast<double>(matches);
    step["ms"] =
        i < stats.per_pattern_ms.size() ? stats.per_pattern_ms[i] : 0.0;
    // Per-operator resource counters. `access` is the index-vs-fullscan
    // choice ("graph" for path searches); selectivity is emitted over
    // examined rows. Everything except `ms` is deterministic at any
    // ?threads= setting.
    uint64_t examined = i < stats.pattern_rows_examined.size()
                            ? stats.pattern_rows_examined[i]
                            : 0;
    step["access"] = std::string(engine::AccessPathLabel(stats, i));
    step["rows_examined"] = static_cast<double>(examined);
    step["rows_emitted"] = static_cast<double>(matches);
    step["selectivity"] =
        examined == 0 ? 0.0
                      : static_cast<double>(matches) /
                            static_cast<double>(examined);
    step["bytes"] = static_cast<double>(
        i < stats.pattern_bytes_touched.size() ? stats.pattern_bytes_touched[i]
                                               : 0);
    step["index_probes"] = static_cast<double>(
        i < stats.pattern_index_probes.size() ? stats.pattern_index_probes[i]
                                              : 0);
    step["full_scans"] = static_cast<double>(
        i < stats.pattern_full_scans.size() ? stats.pattern_full_scans[i]
                                            : 0);
    // Columnar access-path observability: how many event segments the step
    // actually read vs skipped via zone maps / bloom filters.
    step["segments_scanned"] = static_cast<double>(
        i < stats.pattern_segments_scanned.size()
            ? stats.pattern_segments_scanned[i]
            : 0);
    step["segments_pruned"] = static_cast<double>(
        i < stats.pattern_segments_pruned.size()
            ? stats.pattern_segments_pruned[i]
            : 0);
    // Estimate-vs-actual observability: present whenever cardinality
    // estimation ran (ExecutionOptions::use_cardinality_estimates).
    if (i < stats.pattern_est_rows.size() &&
        i < stats.pattern_q_error.size()) {
      step["est_rows"] = stats.pattern_est_rows[i];
      step["q_error"] = stats.pattern_q_error[i];
    }
    steps.push_back(Json(std::move(step)));
  }
  out["steps"] = Json(std::move(steps));

  Json::Object join;
  join["rows"] = static_cast<double>(result.rows.size());
  join["temporal_constraints"] = static_cast<double>(query.temporal.size());
  join["attr_relationships"] =
      static_cast<double>(query.attr_relationships.size());
  out["join"] = Json(std::move(join));

  Json::Object totals;
  totals["total_ms"] = stats.total_ms;
  totals["rows_touched"] =
      static_cast<double>(stats.relational_rows_touched);
  totals["graph_edges_traversed"] =
      static_cast<double>(stats.graph_edges_traversed);
  totals["bytes_touched"] = static_cast<double>(stats.bytes_touched);
  totals["intermediate_result_bytes"] =
      static_cast<double>(stats.intermediate_result_bytes);
  out["totals"] = Json(std::move(totals));

  // Plan-cache and shared-scan observability for this execution.
  Json::Object plan;
  plan["cache_hit"] = stats.plan_cache_hit;
  plan["shared_scan_patterns"] =
      static_cast<double>(stats.shared_scan_patterns);
  out["plan"] = Json(std::move(plan));

  out["truncated"] = result.truncated;
  if (result.truncated) {
    out["truncation_reason"] = stats.truncation_reason;
  }
  if (!result.profile.empty()) {
    out["profile"] = ProfileToJson(result.profile);
  }
  return Json(std::move(out));
}

}  // namespace

void RegisterThreatRaptorApi(HttpServer* server, ThreatRaptor* system) {
  // The API is the observability sink: with a server registered, traces of
  // hunts and queries are recorded into the tracer's ring for /api/traces,
  // and log records into the flight-recorder ring for /api/logs. DEBUG
  // narration (per-pattern scheduling) is on: the ring is bounded, so depth
  // costs eviction of history, not memory.
  obs::Tracer::Default().set_enabled(true);
  obs::Logger::Default().set_enabled(true);
  obs::Logger::Default().set_min_level(obs::LogLevel::kDebug);
  // Pre-register the lazily-created pipeline counters so a scrape exposes
  // the full catalog at zero even before the matching code path runs.
  obs::Registry& registry = obs::Registry::Default();
  registry.GetCounter("raptor_graph_edges_traversed_total",
                      "Graph edges traversed by path searches");
  registry.GetCounter("raptor_graph_nodes_expanded_total",
                      "Graph nodes expanded by path searches");
  registry.GetCounter("raptor_relational_rows_touched_total",
                      "Rows touched by relational scans and index probes");
  for (const char* reason : {"zone_map", "bloom"}) {
    registry.GetCounter(
        "raptor_segments_pruned_total",
        "Columnar event segments skipped before reading row data",
        {{"reason", reason}});
  }
  registry.GetCounter("raptor_plan_cache_hits_total",
                      "TBQL plan-cache lookups served from the cache");
  registry.GetCounter("raptor_plan_cache_misses_total",
                      "TBQL plan-cache lookups that had to re-plan");
  registry.GetCounter("raptor_plan_cache_evictions_total",
                      "TBQL plan-cache entries evicted (LRU or stale)");
  registry.GetHistogram("raptor_shared_scan_patterns",
                        "Patterns served per shared segment scan",
                        obs::ExponentialBuckets(1.0, 2.0, 8));
  for (const char* reason : kTruncationReasons) {
    registry.GetCounter("raptor_query_truncations_total",
                        "Query executions cut short by a resource bound",
                        {{"reason", reason}});
  }
  for (const char* kind : {"query", "hunt"}) {
    registry.GetCounter("raptor_slow_journal_entries_total",
                        "Executions recorded by the slow journal",
                        {{"kind", kind}});
    registry.GetCounter("raptor_misestimate_journal_entries_total",
                        "Executions recorded by the misestimate journal",
                        {{"kind", kind}});
  }
  // Build identity as a Prometheus info-gauge: constant 1, the facts in
  // the labels (the node_exporter "_info" convention).
  registry
      .GetGauge("raptor_build_info",
                "Build identity; constant 1 with version/git_sha labels",
                {{"version", std::string(BuildVersion())},
                 {"git_sha", std::string(BuildGitSha())}})
      ->Set(1);
  registry.GetHistogram(
      "raptor_estimate_qerror",
      "q-error of per-pattern cardinality estimates "
      "(max(est,actual)/min(est,actual), floored at 1)",
      obs::ExponentialBuckets(1.0, 2.0, 12));
  // Pre-register the latency histograms /api/stats quantiles and the SLO
  // catalog read, so both exist from the first scrape.
  registry.GetHistogram("raptor_hunt_ms", "Wall time of one full hunt (ms)");
  registry.GetHistogram("raptor_query_ms",
                        "Wall time of one query execution (ms)");
  // Publish once so every raptor_mem_* gauge exists from the first scrape.
  obs::ResourceTracker::Default().Publish();
  // Warm the shared pool so the raptor_pool_* gauges (and the pool's worker
  // threads) exist from the first scrape, not from the first parallel query.
  ThreadPool::Shared();
  // History self-metrics and the per-SLO incident tally, pre-registered so
  // the catalog is visible from the first scrape.
  registry.GetGauge("raptor_history_series",
                    "Distinct metric series retained by the history store");
  registry.GetGauge("raptor_history_bytes",
                    "Approximate bytes retained by the history store");
  registry.GetGauge("raptor_history_dropped_series",
                    "Series rejected because max_series was reached");
  registry.GetCounter("raptor_history_samples_total",
                      "Collector ticks performed by the metrics history store");
  if (system->options().slo.enabled) {
    for (const char* slo_name :
         {"hunt_latency_p99", "http_error_rate", "degraded_hunt_fraction",
          "memory_headroom"}) {
      registry.GetCounter(
          "raptor_incidents_total",
          "Incidents captured on SLO pending->firing transitions",
          {{"slo", slo_name}});
    }
  }
  auto started = std::make_shared<const std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::now());
  // When an SLO fires, the incident journal freezes a full debug bundle.
  // The hook snapshots the other subsystems without evaluating the SLO
  // engine again (AlertsSnapshotJson), so the capture records the standing
  // that fired rather than advancing the state machine mid-capture.
  obs::IncidentJournal::Default().SetBundleHook([system, started]() {
    Json::Object bundle;
    bundle["build"] = BuildInfoJson();
    bundle["uptime_s"] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      *started)
            .count();
    bundle["options"] = OptionsToJson(system->options());
    bundle["stats"] = StatsJson(system, *started);
    bundle["alerts"] = AlertsSnapshotJson();
    Json::Array logs;
    for (const obs::LogRecord& record : obs::Logger::Default().Snapshot()) {
      logs.push_back(LogRecordToJson(record));
    }
    bundle["logs"] = Json(std::move(logs));
    return Json(std::move(bundle)).Dump();
  });
  // Start the background threads: the periodic SLO evaluator and the
  // history collector. Serving-deployment concerns, so the API (not the
  // library constructor) owns both.
  if (system->options().slo.enabled) obs::SloEngine::Default().Start();
  if (system->options().history.enabled) {
    obs::MetricsHistory::Default().Start();
  }

  server->Route("GET", "/", [](const HttpRequest&) {
    return HttpResponse{200, "text/html; charset=utf-8", kIndexHtml};
  });

  server->Route("GET", "/api/stats", [system, started](const HttpRequest&) {
    return JsonResponse(StatsJson(system, *started));
  });

  server->Route("GET", "/api/logs", [](const HttpRequest& req) {
    obs::LogFilter filter;
    if (auto level = QueryParam(req, "level")) {
      std::optional<obs::LogLevel> parsed = obs::ParseLogLevel(*level);
      if (!parsed) {
        return ErrorResponse(Status::InvalidArgument(
            "unknown level '" + *level + "' (debug|info|warn|error)"));
      }
      filter.min_level = *parsed;
    }
    if (auto subsystem = QueryParam(req, "subsystem")) {
      filter.subsystem = *subsystem;
    }
    if (auto trace = QueryParam(req, "trace")) {
      char* end = nullptr;
      filter.trace_id = std::strtoull(trace->c_str(), &end, 10);
      if (trace->empty() || end == nullptr || *end != '\0' ||
          filter.trace_id == 0) {
        return ErrorResponse(
            Status::InvalidArgument("trace must be a positive integer"));
      }
    }
    Result<size_t> limit = BoundedParam(req, "limit", 0, kMaxListLimit);
    if (!limit.ok()) return ErrorResponse(limit.status());
    filter.limit = *limit;
    Json::Array records;
    for (const obs::LogRecord& record :
         obs::Logger::Default().Snapshot(filter)) {
      records.push_back(LogRecordToJson(record));
    }
    Json::Object out;
    out["records"] = Json(std::move(records));
    return JsonResponse(Json(std::move(out)));
  });

  server->Route("GET", "/api/debug/bundle", [system,
                                             started](const HttpRequest&) {
    // One curl captures everything needed to diagnose an incident: build,
    // uptime, configuration, counters, recent traces, and the log ring.
    Json::Object bundle;
    bundle["build"] = BuildInfoJson();
    bundle["uptime_s"] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      *started)
            .count();
    bundle["options"] = OptionsToJson(system->options());
    bundle["stats"] = StatsJson(system, *started);
    bundle["metrics"] = obs::Registry::Default().RenderPrometheus();
    Json::Array traces;
    for (const obs::Trace& trace : obs::Tracer::Default().RecentTraces()) {
      traces.push_back(TraceToJson(trace, /*include_spans=*/false));
    }
    bundle["traces"] = Json(std::move(traces));
    Json::Array logs;
    for (const obs::LogRecord& record : obs::Logger::Default().Snapshot()) {
      logs.push_back(LogRecordToJson(record));
    }
    bundle["logs"] = Json(std::move(logs));
    Json::Array slow;
    for (const obs::SlowEntry& entry : obs::SlowJournal::Default().Snapshot()) {
      slow.push_back(SlowEntryToJson(entry));
    }
    bundle["slow"] = Json(std::move(slow));
    Json::Array misestimates;
    for (const obs::MisestimateEntry& entry :
         obs::MisestimateJournal::Default().Snapshot()) {
      misestimates.push_back(MisestimateEntryToJson(entry));
    }
    bundle["misestimates"] = Json(std::move(misestimates));
    bundle["datastats"] = DataStatsJson(system);
    bundle["alerts"] = AlertsJson();
    // Captured incidents without their own frozen bundles (each of those
    // is itself a bundle; nesting them would square the payload).
    bundle["incidents"] =
        IncidentsJson(/*limit=*/0, /*include_bundles=*/false);
    return JsonResponse(Json(std::move(bundle)));
  });

  server->Route("GET", "/api/metrics", [](const HttpRequest& req) {
    // "?format=json" mirrors the Prometheus exposition as structured JSON;
    // the default (or "?format=text") stays the scrape format.
    Result<std::string> format = FormatParam(req, {"text", "json"}, "text");
    if (!format.ok()) return ErrorResponse(format.status());
    obs::ResourceTracker::Default().Publish();
    if (*format == "json") return JsonResponse(MetricsJson());
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        obs::Registry::Default().RenderPrometheus()};
  });

  server->Route("GET", "/api/alerts", [](const HttpRequest&) {
    // SLO burn-rate alert standing: every SLO's state machine, burn
    // rates, and the recent transition history.
    return JsonResponse(AlertsJson());
  });

  server->Route("GET", "/api/metrics/range", [](const HttpRequest& req) {
    // Time-series range query over the retained history:
    //   ?name=<metric>        required
    //   &label=key=value      optional child filter
    //   &start_s= &end_s=     unix seconds; defaults: last 5 minutes
    //   &step_s=              output step; default = serving tier interval
    //   &agg=rate|avg|min|max|last|p50|p99   default by metric kind
    obs::MetricsHistory& history = obs::MetricsHistory::Default();
    std::optional<std::string> name = QueryParam(req, "name");
    if (!name || name->empty()) {
      return ErrorResponse(
          Status::InvalidArgument("name is required (a metric family name)"));
    }
    obs::RangeRequest range;
    range.name = *name;
    if (auto label = QueryParam(req, "label")) {
      size_t eq = label->find('=');
      if (eq == std::string::npos || eq == 0) {
        return ErrorResponse(
            Status::InvalidArgument("label must be key=value"));
      }
      range.label_key = label->substr(0, eq);
      range.label_value = label->substr(eq + 1);
    }
    uint64_t now_s = history.NowUnixMs() / 1000;
    Result<uint64_t> end_s = U64Param(req, "end_s", now_s);
    if (!end_s.ok()) return ErrorResponse(end_s.status());
    uint64_t default_start = *end_s > 300 ? *end_s - 300 : 0;
    Result<uint64_t> start_s = U64Param(req, "start_s", default_start);
    if (!start_s.ok()) return ErrorResponse(start_s.status());
    Result<uint64_t> step_s = U64Param(req, "step_s", 0);
    if (!step_s.ok()) return ErrorResponse(step_s.status());
    range.start_ms = *start_s * 1000;
    range.end_ms = *end_s * 1000;
    range.step_ms = *step_s * 1000;
    if (auto agg = QueryParam(req, "agg")) {
      std::optional<obs::RangeAgg> parsed = obs::ParseRangeAgg(*agg);
      if (!parsed) {
        return ErrorResponse(Status::InvalidArgument(
            "unknown agg '" + *agg + "' (rate|avg|min|max|last|p50|p99)"));
      }
      range.agg = *parsed;
    } else {
      // Default aggregation by what the series measures: counters and
      // histograms answer rates, gauges answer averages.
      std::optional<obs::SeriesKind> kind = history.Kind(range.name);
      range.agg = (kind && *kind != obs::SeriesKind::kGauge)
                      ? obs::RangeAgg::kRate
                      : obs::RangeAgg::kAvg;
    }
    obs::RangeResult result = history.Range(range);
    if (!result.error.empty()) {
      return ErrorResponse(Status::InvalidArgument(result.error));
    }
    return JsonResponse(RangeResultJson(range, result));
  });

  server->Route("GET", "/api/incidents", [](const HttpRequest& req) {
    // Captured incidents, newest first: each carries the offending
    // metric's frozen history window and the debug bundle taken at the
    // moment the SLO fired. "?limit=N" (default 0 = all retained).
    Result<size_t> limit = BoundedParam(req, "limit", 0, kMaxListLimit);
    if (!limit.ok()) return ErrorResponse(limit.status());
    return JsonResponse(IncidentsJson(*limit, /*include_bundles=*/true));
  });

  server->Route("GET", "/api/dashboard", [](const HttpRequest&) {
    return HttpResponse{200, "text/html; charset=utf-8", kDashboardHtml};
  });

  server->Route("GET", "/api/profile", [](const HttpRequest& req) {
    // Sampling-profiler capture: blocks for "?seconds=N" (default 2,
    // cap 60 — the accept loop serves connections serially, so captures
    // hold it like a long /api/watch does) and returns the window's
    // folded stacks. "?seconds=0" returns the cumulative snapshot instead,
    // which requires the profiler to be running (enable it via
    // ThreatRaptorOptions::profiler). "?format=folded" (default) is
    // flamegraph.pl/speedscope input; "?format=json" structures it.
    Result<std::string> format =
        FormatParam(req, {"folded", "json"}, "folded");
    if (!format.ok()) return ErrorResponse(format.status());
    Result<size_t> seconds = BoundedParam(req, "seconds", 2, 60);
    if (!seconds.ok()) return ErrorResponse(seconds.status());
    obs::Profiler& profiler = obs::Profiler::Default();
    obs::ProfileSnapshot snapshot;
    if (*seconds == 0) {
      if (!profiler.running()) {
        return ErrorResponse(Status::InvalidArgument(
            "seconds=0 reads the cumulative profile, but the profiler is "
            "not running (enable options.profiler or pass seconds>0)"));
      }
      snapshot = profiler.Snapshot();
    } else {
      snapshot = profiler.Capture(static_cast<double>(*seconds));
    }
    if (*format == "json") {
      return JsonResponse(ProfileSnapshotToJson(snapshot));
    }
    return HttpResponse{200, "text/plain; charset=utf-8",
                        obs::Profiler::RenderFolded(snapshot)};
  });

  server->Route("GET", "/api/traces", [](const HttpRequest& req) {
    // "?limit=N" keeps only the newest N traces (validated like every
    // other list limit; 0 or absent = the whole ring).
    Result<size_t> limit = BoundedParam(req, "limit", 0, kMaxListLimit);
    if (!limit.ok()) return ErrorResponse(limit.status());
    std::vector<obs::Trace> recent = obs::Tracer::Default().RecentTraces();
    if (*limit != 0 && recent.size() > *limit) {
      recent.erase(recent.begin(),
                   recent.end() - static_cast<ptrdiff_t>(*limit));
    }
    Json::Array traces;
    for (const obs::Trace& trace : recent) {
      traces.push_back(TraceToJson(trace, /*include_spans=*/false));
    }
    Json::Object out;
    out["traces"] = Json(std::move(traces));
    return JsonResponse(Json(std::move(out)));
  });

  server->Route("GET", "/api/slow", [](const HttpRequest& req) {
    // The slow-hunt journal: hunts/queries over the configured latency or
    // bytes threshold, newest first, each with its full profile and
    // per-operator stats. "?limit=N" keeps the newest N.
    Result<size_t> limit = BoundedParam(req, "limit", 0, kMaxListLimit);
    if (!limit.ok()) return ErrorResponse(limit.status());
    obs::SlowJournal& journal = obs::SlowJournal::Default();
    obs::SlowJournalOptions options = journal.options();
    Json::Array entries;
    for (const obs::SlowEntry& entry : journal.Snapshot(*limit)) {
      entries.push_back(SlowEntryToJson(entry));
    }
    Json::Object out;
    out["entries"] = Json(std::move(entries));
    out["latency_threshold_ms"] = options.latency_threshold_ms;
    out["bytes_threshold"] = static_cast<double>(options.bytes_threshold);
    out["capacity"] = static_cast<double>(options.capacity);
    return JsonResponse(Json(std::move(out)));
  });

  server->Route("GET", "/api/misestimates", [](const HttpRequest& req) {
    // The misestimate journal: the worst cardinality-estimation misses
    // (q-error over the configured threshold), worst first, each with the
    // query text, the statistics snapshot the estimator saw, and
    // per-operator estimate-vs-actual rows. "?limit=N" keeps the worst N.
    Result<size_t> limit = BoundedParam(req, "limit", 0, kMaxListLimit);
    if (!limit.ok()) return ErrorResponse(limit.status());
    obs::MisestimateJournal& journal = obs::MisestimateJournal::Default();
    obs::MisestimateJournalOptions options = journal.options();
    Json::Array entries;
    for (const obs::MisestimateEntry& entry : journal.Snapshot(*limit)) {
      entries.push_back(MisestimateEntryToJson(entry));
    }
    Json::Object out;
    out["entries"] = Json(std::move(entries));
    out["q_error_threshold"] = options.q_error_threshold;
    out["capacity"] = static_cast<double>(options.capacity);
    return JsonResponse(Json(std::move(out)));
  });

  server->Route("GET", "/api/datastats", [system](const HttpRequest&) {
    // The data-statistics subsystem: per-table/per-column sketches and
    // graph degree distributions, exactly what the cardinality estimator
    // reads. Cheap to render — the sketches are bounded by construction.
    return JsonResponse(DataStatsJson(system));
  });

  server->Route("GET", "/api/healthz", [](const HttpRequest&) {
    // Liveness: the accept loop is serving requests.
    return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
  });

  server->Route("GET", "/api/readyz", [system](const HttpRequest&) {
    // Readiness: gated on storage sync state — before FinalizeStorage()
    // hunts and queries would only return errors, so load balancers should
    // not route traffic here yet.
    if (system->storage_ready()) {
      return HttpResponse{200, "text/plain; charset=utf-8", "ready\n"};
    }
    return HttpResponse{503, "text/plain; charset=utf-8",
                        "storage not finalized\n"};
  });

  server->Route("GET", "/api/watch", [system, started](const HttpRequest& req) {
    // Server-Sent Events live-metrics stream for dashboards: one
    // `event: metrics` block per interval carrying the /api/stats document.
    // Bounded by design ("?count=N", default 5) because the accept loop
    // serves connections serially — an unbounded stream would starve other
    // clients.
    Result<size_t> count = BoundedParam(req, "count", 5, 3600);
    if (!count.ok()) return ErrorResponse(count.status());
    Result<size_t> interval = BoundedParam(req, "interval_ms", 500, 60000);
    if (!interval.ok()) return ErrorResponse(interval.status());
    // "?heartbeat_ms=N" (default 1000, 0 = off) bounds the stream's silent
    // gaps: while waiting out an interval longer than the heartbeat, the
    // stream emits `: heartbeat` comment frames so idle streams are
    // distinguishable from dead connections and survive proxy idle
    // timeouts. SSE clients ignore comment lines by spec.
    Result<size_t> heartbeat = BoundedParam(req, "heartbeat_ms", 1000, 60000);
    if (!heartbeat.ok()) return ErrorResponse(heartbeat.status());
    // "?metric=<prefix>" switches the stream from the /api/stats document
    // to raw metric families whose name starts with the prefix. These
    // frames reuse the history collector's most recent registry snapshot
    // instead of re-snapshotting per stream — N concurrent watchers cost
    // one snapshot per collector tick, not N.
    std::optional<std::string> metric = QueryParam(req, "metric");
    struct WatchState {
      size_t remaining = 0;
      bool first = true;
      size_t sleep_left_ms = 0;  ///< Rest of the current interval.
    };
    auto state = std::make_shared<WatchState>();
    state->remaining = std::max<size_t>(1, *count);
    size_t interval_ms = *interval;
    size_t heartbeat_ms = *heartbeat;
    HttpResponse response;
    response.status = 200;
    response.content_type = "text/event-stream; charset=utf-8";
    response.body_stream = [system, started, state, interval_ms, heartbeat_ms,
                            metric]() -> std::optional<std::string> {
      if (state->remaining == 0) return std::nullopt;
      if (state->first) {
        state->first = false;
      } else if (state->sleep_left_ms == 0) {
        state->sleep_left_ms = std::max<size_t>(1, interval_ms);
      }
      // Sleep the interval in heartbeat-sized slices, emitting a comment
      // frame after each non-final slice.
      if (state->sleep_left_ms > 0) {
        size_t slice = state->sleep_left_ms;
        if (heartbeat_ms > 0) slice = std::min(slice, heartbeat_ms);
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        state->sleep_left_ms -= slice;
        if (state->sleep_left_ms > 0) return ": heartbeat\n\n";
      }
      --state->remaining;
      if (metric) {
        obs::MetricsHistory& history = obs::MetricsHistory::Default();
        std::shared_ptr<const std::vector<obs::FamilySnapshot>> snapshot =
            history.LatestSnapshot();
        std::vector<obs::FamilySnapshot> direct;
        if (!snapshot) {
          // No collector tick yet (history disabled or not started):
          // fall back to a direct registry snapshot.
          direct = obs::Registry::Default().Snapshot();
        }
        const std::vector<obs::FamilySnapshot>& families =
            snapshot ? *snapshot : direct;
        Json::Array matched;
        for (const obs::FamilySnapshot& family : families) {
          if (family.name.rfind(*metric, 0) == 0) {
            matched.push_back(FamilyToJson(family));
          }
        }
        Json::Object frame;
        frame["t_unix_ms"] = static_cast<double>(history.NowUnixMs());
        frame["families"] = Json(std::move(matched));
        return "event: metrics\ndata: " + Json(std::move(frame)).Dump() +
               "\n\n";
      }
      return "event: metrics\ndata: " + StatsJson(system, *started).Dump() +
             "\n\n";
    };
    return response;
  });

  server->RoutePrefix("GET", "/api/traces/", [](const HttpRequest& req) {
    std::string id_text = req.path.substr(std::string("/api/traces/").size());
    char* end = nullptr;
    uint64_t id = std::strtoull(id_text.c_str(), &end, 10);
    if (id_text.empty() || end == nullptr || *end != '\0') {
      return ErrorResponse(
          Status::InvalidArgument("trace id must be an integer"));
    }
    std::optional<obs::Trace> trace = obs::Tracer::Default().FindTrace(id);
    if (!trace) {
      Json::Object error;
      error["error"] = "no trace " + id_text + " in the ring";
      return JsonResponse(Json(std::move(error)), 404);
    }
    return JsonResponse(TraceToJson(*trace, /*include_spans=*/true));
  });

  server->Route("POST", "/api/extract", [system](const HttpRequest& req) {
    nlp::ExtractionResult extraction = system->ExtractBehavior(req.body);
    return JsonResponse(GraphToJson(extraction.graph));
  });

  server->Route("POST", "/api/hunt", [system](const HttpRequest& req) {
    // "?degraded=1" opts this hunt into degraded mode: partial results
    // instead of an error when synthesis or full-query execution fails.
    // "?profile=1" embeds the stage-level timing breakdown. "?threads=N"
    // overrides the execution thread count for this hunt.
    Result<size_t> threads = ThreadsParam(req);
    if (!threads.ok()) return ErrorResponse(threads.status());
    HuntOptions hunt_options = system->options().hunt;
    if (*threads != 0) hunt_options.num_threads = *threads;
    if (QueryFlag(req, "degraded")) hunt_options.allow_degraded = true;
    bool profile = QueryFlag(req, "profile");
    if (profile) hunt_options.collect_profile = true;
    auto hunt = system->Hunt(req.body, hunt_options);
    if (!hunt.ok()) return ErrorResponse(hunt.status());
    Json::Object out;
    out["behavior_graph"] = GraphToJson(hunt->extraction.graph);
    out["tbql"] = hunt->query_text;
    out["result"] = ResultToJson(hunt->result);
    if (profile && !hunt->profile.empty()) {
      out["profile"] = ProfileToJson(hunt->profile);
    }
    if (hunt->degradation.degraded) {
      Json::Object degradation;
      degradation["degraded"] = true;
      Json::Array failures;
      for (const auto& f : hunt->degradation.failures) {
        Json::Object failure;
        failure["stage"] = f.stage;
        failure["error"] = f.error;
        failures.push_back(Json(std::move(failure)));
      }
      degradation["failures"] = Json(std::move(failures));
      degradation["subqueries_attempted"] =
          static_cast<double>(hunt->degradation.subqueries_attempted);
      degradation["subqueries_succeeded"] =
          static_cast<double>(hunt->degradation.subqueries_succeeded);
      out["degradation"] = Json(std::move(degradation));
    }
    return JsonResponse(Json(std::move(out)));
  });

  server->Route("POST", "/api/query", [system](const HttpRequest& req) {
    // "?profile=1" embeds the stage-level timing breakdown. "?threads=N"
    // overrides the execution thread count for this query.
    Result<size_t> threads = ThreadsParam(req);
    if (!threads.ok()) return ErrorResponse(threads.status());
    engine::ExecutionOptions execution = system->options().execution;
    if (*threads != 0) execution.num_threads = *threads;
    bool profile = QueryFlag(req, "profile");
    if (profile) execution.collect_profile = true;
    auto result = system->ExecuteTbql(req.body, execution);
    if (!result.ok()) return ErrorResponse(result.status());
    return JsonResponse(
        ResultToJson(*result, profile ? &result->profile : nullptr));
  });

  server->Route("POST", "/api/explain", [system](const HttpRequest& req) {
    // "?format=json" structures the plan for machine consumption;
    // "?profile=1" adds the stage breakdown to either form; "?threads=N"
    // overrides the execution thread count.
    Result<size_t> threads = ThreadsParam(req);
    if (!threads.ok()) return ErrorResponse(threads.status());
    auto parsed = tbql::Parse(req.body);
    if (!parsed.ok()) return ErrorResponse(parsed.status());
    if (Status st = tbql::Analyze(&*parsed); !st.ok()) {
      return ErrorResponse(st);
    }
    engine::ExecutionOptions execution = system->options().execution;
    if (*threads != 0) execution.num_threads = *threads;
    if (QueryFlag(req, "profile")) execution.collect_profile = true;
    Result<std::string> format = FormatParam(req, {"text", "json"}, "text");
    if (!format.ok()) return ErrorResponse(format.status());
    auto result = system->ExecuteQuery(*parsed, execution);
    if (!result.ok()) return ErrorResponse(result.status());
    if (*format == "json") {
      return JsonResponse(ExplainToJson(*parsed, *result));
    }
    Json::Object out;
    out["explain"] = engine::ExplainAnalyze(*parsed, *result);
    return JsonResponse(Json(std::move(out)));
  });
}

}  // namespace raptor::server
