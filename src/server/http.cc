#include "server/http.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/fault_injection.h"
#include "common/strings.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace raptor::server {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

void SendResponse(int fd, const HttpResponse& response) {
  if (response.body_stream) {
    // Streamed body: headers without Content-Length, then chunks until the
    // producer is done or the client hangs up (send failure).
    std::string head = StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                                 StatusText(response.status));
    head += "Content-Type: " + response.content_type + "\r\n";
    head += "Cache-Control: no-store\r\n";
    head += "Connection: close\r\n\r\n";
    if (::send(fd, head.data(), head.size(), MSG_NOSIGNAL) < 0) return;
    while (std::optional<std::string> chunk = response.body_stream()) {
      if (chunk->empty()) continue;
      if (::send(fd, chunk->data(), chunk->size(), MSG_NOSIGNAL) < 0) return;
    }
    return;
  }
  std::string wire = SerializeResponse(response);
  (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
}

HttpResponse PlainResponse(int status, const std::string& body) {
  return HttpResponse{status, "text/plain; charset=utf-8", body};
}

}  // namespace

Result<HttpRequest> ParseRequestHead(std::string_view head) {
  HttpRequest request;
  size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) {
    return Status::ParseError("no request line");
  }
  std::vector<std::string> parts =
      SplitWhitespace(head.substr(0, line_end));
  if (parts.size() != 3 || !StartsWith(parts[2], "HTTP/1.")) {
    return Status::ParseError("malformed request line");
  }
  request.method = parts[0];
  std::string target = parts[1];
  size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    request.path = target;
  } else {
    request.path = target.substr(0, qmark);
    request.query = target.substr(qmark + 1);
  }

  size_t pos = line_end + 2;
  while (pos < head.size()) {
    size_t next = head.find("\r\n", pos);
    if (next == std::string_view::npos) next = head.size();
    std::string_view line = head.substr(pos, next - pos);
    // Clamp: when the head lacks a trailing CRLF, next + 2 would step past
    // head.size().
    pos = std::min(next + 2, head.size());
    if (line.empty()) break;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("malformed header line");
    }
    std::string name = ToLower(Trim(line.substr(0, colon)));
    request.headers[name] = std::string(Trim(line.substr(colon + 1)));
  }
  return request;
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                              StatusText(response.status));
  out += "Content-Type: " + response.content_type + "\r\n";
  out += StrFormat("Content-Length: %zu\r\n", response.body.size());
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

void HttpServer::Route(const std::string& method, const std::string& path,
                       Handler handler) {
  routes_[{method, path}] = std::move(handler);
}

void HttpServer::RoutePrefix(const std::string& method,
                             const std::string& prefix, Handler handler) {
  prefix_routes_[{method, prefix}] = std::move(handler);
}

Status HttpServer::Start(uint16_t port) {
  if (running_.load()) return Status::InvalidArgument("already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(StrFormat("bind(127.0.0.1:%u) failed", port));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptLoop() {
  obs::ProfiledThread profiled("http");
  while (running_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100 /*ms*/);
    if (ready <= 0) continue;  // timeout or EINTR: re-check running_
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  static obs::Counter* requests_total = obs::Registry::Default().GetCounter(
      "raptor_http_requests_total", "HTTP connections handled");
  requests_total->Increment();
  auto handle_start = std::chrono::steady_clock::now();
  // Records the response metrics and sends it. `route_label` is a
  // registered route path ("unmatched" for 404/405, "unparsed" when the
  // request never parsed) so metric cardinality stays bounded by the route
  // table, not by client-controlled paths.
  auto finish = [&](const HttpResponse& response,
                    const std::string& route_label) {
    obs::Registry& registry = obs::Registry::Default();
    std::string code = std::to_string(response.status);
    registry
        .GetCounter("raptor_http_responses_total",
                    "HTTP responses by route and status code",
                    {{"route", route_label}, {"code", code}})
        ->Increment();
    bool is_error = response.status == 408 || response.status == 413 ||
                    response.status == 500;
    if (is_error) {
      registry
          .GetCounter("raptor_http_errors_total",
                      "HTTP failure responses (timeouts, oversize, crashes)",
                      {{"code", code}})
          ->Increment();
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - handle_start)
                    .count();
    registry
        .GetHistogram("raptor_http_request_ms",
                      "Wall time from accept to response sent (ms)",
                      /*bounds=*/{}, {{"route", route_label}})
        ->Observe(ms);
    // The request log carries the bounded route label, never the raw path.
    obs::Logger::Default()
        .Log(is_error ? obs::LogLevel::kWarn : obs::LogLevel::kInfo, "server",
             "request handled")
        .Field("route", route_label)
        .Field("status", static_cast<int64_t>(response.status))
        .Field("ms", ms);
    SendResponse(fd, response);
  };

  // One wall-clock budget covers reading the whole request (head + body):
  // a slowloris client that dribbles bytes cannot hold the accept loop
  // hostage for longer than recv_timeout_ms.
  auto read_deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(options_.recv_timeout_ms);
  // recv with the remaining budget; 0 = orderly close / error, -1 = timeout.
  auto recv_some = [&](char* buffer, size_t cap) -> ssize_t {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                         read_deadline - std::chrono::steady_clock::now())
                         .count();
    if (remaining <= 0) return -1;
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (ready <= 0) return -1;
    ssize_t n = ::recv(fd, buffer, cap, 0);
    return n <= 0 ? 0 : n;
  };

  // Read the head (until CRLFCRLF), then Content-Length body bytes.
  std::string data;
  char buffer[4096];
  size_t head_end = std::string::npos;
  bool timed_out = false;
  while (head_end == std::string::npos &&
         data.size() <= options_.max_header_bytes) {
    ssize_t n = recv_some(buffer, sizeof(buffer));
    if (n < 0) timed_out = true;
    if (n <= 0) break;
    data.append(buffer, static_cast<size_t>(n));
    head_end = data.find("\r\n\r\n");
  }
  if (head_end == std::string::npos) {
    if (timed_out) {
      finish(PlainResponse(408, "request timeout\n"), "unparsed");
    } else if (data.size() > options_.max_header_bytes) {
      finish(PlainResponse(413, "request head too large\n"), "unparsed");
    } else {
      finish(PlainResponse(400, "malformed request\n"), "unparsed");
    }
    return;
  }
  if (head_end > options_.max_header_bytes) {
    finish(PlainResponse(413, "request head too large\n"), "unparsed");
    return;
  }

  auto parsed = ParseRequestHead(data.substr(0, head_end + 2));
  if (!parsed.ok()) {
    finish(PlainResponse(400, parsed.status().ToString() + "\n"), "unparsed");
    return;
  }
  HttpRequest request = *std::move(parsed);
  size_t content_length = 0;
  if (auto it = request.headers.find("content-length");
      it != request.headers.end()) {
    content_length = static_cast<size_t>(std::strtoull(
        it->second.c_str(), nullptr, 10));
  }
  if (content_length > options_.max_body_bytes) {
    finish(PlainResponse(413, "request body too large\n"), "unparsed");
    return;
  }
  request.body = data.substr(head_end + 4);
  timed_out = false;
  while (request.body.size() < content_length) {
    ssize_t n = recv_some(buffer, sizeof(buffer));
    if (n < 0) timed_out = true;
    if (n <= 0) break;
    request.body.append(buffer, static_cast<size_t>(n));
  }
  if (request.body.size() < content_length) {
    finish(PlainResponse(timed_out ? 408 : 400,
                         timed_out ? "request timeout\n" : "truncated body\n"),
           "unparsed");
    return;
  }
  if (request.body.size() > options_.max_body_bytes) {
    finish(PlainResponse(413, "request body too large\n"), "unparsed");
    return;
  }

  // Exact routes win; otherwise the longest matching prefix route.
  const Handler* handler = nullptr;
  std::string route_label = "unmatched";
  if (auto route = routes_.find({request.method, request.path});
      route != routes_.end()) {
    handler = &route->second;
    route_label = request.path;
  } else {
    size_t best_len = 0;
    for (const auto& [key, h] : prefix_routes_) {
      if (key.first == request.method && request.path.size() >= key.second.size() &&
          request.path.compare(0, key.second.size(), key.second) == 0 &&
          key.second.size() >= best_len) {
        handler = &h;
        route_label = key.second;
        best_len = key.second.size();
      }
    }
  }

  HttpResponse response;
  if (handler == nullptr) {
    bool path_known = false;
    for (const auto& [key, h] : routes_) {
      if (key.second == request.path) path_known = true;
    }
    for (const auto& [key, h] : prefix_routes_) {
      if (request.path.compare(0, key.second.size(), key.second) == 0) {
        path_known = true;
      }
    }
    response = PlainResponse(path_known ? 405 : 404,
                             path_known ? "method not allowed\n"
                                        : "not found\n");
  } else {
    // A handler failure must cost one 500, never the accept loop. Handlers
    // are user code (std::function), the one place exceptions can enter
    // this otherwise Status-based codebase.
    try {
      if (Status st = TriggerFaultPoint("server.handler"); !st.ok()) {
        response = PlainResponse(500, st.ToString() + "\n");
      } else {
        response = (*handler)(request);
      }
    } catch (const std::exception& e) {
      response = PlainResponse(
          500, std::string("handler failed: ") + e.what() + "\n");
    } catch (...) {
      response = PlainResponse(500, "handler failed\n");
    }
  }
  finish(response, route_label);
}

}  // namespace raptor::server
