// The web UI and JSON API of the paper's §III deployment, bound to a
// ThreatRaptor instance.
//
// Routes:
//   GET  /             the demo page (report box -> hunt; query box -> run)
//   GET  /api/stats    trace statistics (JSON)
//   POST /api/hunt     body = OSCTI report text -> extraction + synthesized
//                      TBQL + results (JSON)
//   POST /api/extract  body = OSCTI report text -> behavior graph (JSON)
//   POST /api/query    body = TBQL text -> results (JSON)
//   POST /api/explain  body = TBQL text -> EXPLAIN ANALYZE (JSON)
//
// The server handles requests serially on its accept thread, which matches
// ThreatRaptor's single-threaded execution model.

#pragma once

#include "core/threat_raptor.h"
#include "server/http.h"

namespace raptor::server {

/// Registers all routes on `server`. `system` must be finalized and must
/// outlive the server.
void RegisterThreatRaptorApi(HttpServer* server, ThreatRaptor* system);

}  // namespace raptor::server
