// Causal dependency tracking over the event graph (extension; the
// investigation step that the paper's hunting output feeds — the AIQL/CCS
// lineage ThreatRaptor builds on uses exactly this backward/forward
// closure for attack reconstruction).
//
// Backward tracking from a set of seed events answers "what led to this":
// it follows information flow against its direction (for an event u->v at
// time t, anything that flowed *into* u strictly before t is causally
// relevant). Forward tracking answers "what did this affect". Both respect
// event timestamps, so unrelated later/earlier activity on the same
// entities is excluded.

#pragma once

#include <vector>

#include "storage/graph/graph_store.h"

namespace raptor::graph {

/// \brief Result of a tracking pass: the causal subgraph.
struct DependencySubgraph {
  std::vector<audit::EventId> events;    ///< Sorted, deduplicated.
  std::vector<audit::EntityId> entities; ///< Sorted, deduplicated.
};

/// \brief Tuning for dependency tracking.
struct TrackingOptions {
  /// Hop budget (entity expansions); bounds the closure on busy systems.
  size_t max_depth = 16;
  /// Optional absolute time fence: backward tracking ignores events before
  /// this, forward tracking ignores events after its counterpart below.
  std::optional<audit::Timestamp> not_before;
  std::optional<audit::Timestamp> not_after;
};

/// Backward closure: every event that could have causally influenced the
/// seed events, per time-respecting information flow.
DependencySubgraph TrackBackward(const GraphStore& graph,
                                 const std::vector<audit::EventId>& seeds,
                                 const TrackingOptions& options = {});

/// Forward closure: every event the seed events could have causally
/// influenced.
DependencySubgraph TrackForward(const GraphStore& graph,
                                const std::vector<audit::EventId>& seeds,
                                const TrackingOptions& options = {});

/// Union of backward and forward closures from the seeds — the full attack
/// reconstruction a hunt's matches anchor.
DependencySubgraph TrackBidirectional(
    const GraphStore& graph, const std::vector<audit::EventId>& seeds,
    const TrackingOptions& options = {});

}  // namespace raptor::graph
