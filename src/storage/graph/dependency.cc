#include "storage/graph/dependency.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace raptor::graph {

using audit::EntityId;
using audit::EventId;
using audit::Operation;
using audit::Timestamp;

namespace {

/// True when information flows from the storage-object into the
/// storage-subject (reads, receives, code loading); false when it flows
/// subject -> object (writes, sends, process control, file maintenance).
bool FlowsIntoSubject(Operation op) {
  switch (op) {
    case Operation::kRead:
    case Operation::kRecv:
    case Operation::kExecute:
    case Operation::kAccept:
      return true;
    default:
      return false;
  }
}

EntityId FlowSource(const GraphEdge& e) {
  return FlowsIntoSubject(e.op) ? e.dst : e.src;
}

EntityId FlowSink(const GraphEdge& e) {
  return FlowsIntoSubject(e.op) ? e.src : e.dst;
}

/// Shared worklist engine. `backward` selects the closure direction.
DependencySubgraph Track(const GraphStore& graph,
                         const std::vector<EventId>& seeds,
                         const TrackingOptions& options, bool backward) {
  // Map event ids to edge indexes once.
  std::unordered_map<EventId, size_t> edge_of_event;
  for (size_t i = 0; i < graph.num_edges(); ++i) {
    edge_of_event.emplace(graph.edge(i).event_id, i);
  }

  DependencySubgraph out;
  // Per-entity frontier time: for backward tracking, the *latest* time at
  // which the entity is known relevant (events before it qualify); for
  // forward, the *earliest*.
  std::unordered_map<EntityId, Timestamp> frontier;
  struct Item {
    EntityId entity;
    Timestamp time;
    size_t depth;
  };
  std::deque<Item> worklist;

  auto relax = [&](EntityId entity, Timestamp time, size_t depth) {
    auto it = frontier.find(entity);
    bool improves = it == frontier.end() ||
                    (backward ? time > it->second : time < it->second);
    if (!improves) return;
    frontier[entity] = time;
    worklist.push_back(Item{entity, time, depth});
  };

  std::vector<bool> event_in(graph.num_edges(), false);
  auto add_event = [&](size_t edge_idx) {
    if (event_in[edge_idx]) return false;
    event_in[edge_idx] = true;
    out.events.push_back(graph.edge(edge_idx).event_id);
    return true;
  };

  for (EventId seed : seeds) {
    auto it = edge_of_event.find(seed);
    if (it == edge_of_event.end()) continue;
    const GraphEdge& e = graph.edge(it->second);
    add_event(it->second);
    if (backward) {
      // What influenced this event: its flow source, before it started.
      relax(FlowSource(e), e.start_time, 0);
    } else {
      relax(FlowSink(e), e.end_time, 0);
    }
  }

  while (!worklist.empty()) {
    Item item = worklist.front();
    worklist.pop_front();
    if (item.depth >= options.max_depth) continue;
    // Events incident to the entity in the relevant flow role.
    auto consider = [&](size_t edge_idx) {
      const GraphEdge& e = graph.edge(edge_idx);
      if (options.not_before && e.start_time < *options.not_before) return;
      if (options.not_after && e.start_time > *options.not_after) return;
      if (backward) {
        // Event must write into this entity before the frontier time.
        if (FlowSink(e) != item.entity) return;
        if (!(e.start_time < item.time)) return;
        add_event(edge_idx);
        relax(FlowSource(e), e.start_time, item.depth + 1);
      } else {
        if (FlowSource(e) != item.entity) return;
        if (!(e.start_time > item.time)) return;
        add_event(edge_idx);
        relax(FlowSink(e), e.end_time, item.depth + 1);
      }
    };
    for (size_t idx : graph.OutEdges(item.entity)) consider(idx);
    for (size_t idx : graph.InEdges(item.entity)) consider(idx);
  }

  // Collect entities from the included events.
  std::vector<bool> entity_in(graph.num_nodes(), false);
  for (EventId id : out.events) {
    const GraphEdge& e = graph.edge(edge_of_event.at(id));
    entity_in[e.src] = true;
    entity_in[e.dst] = true;
  }
  for (EntityId id = 0; id < entity_in.size(); ++id) {
    if (entity_in[id]) out.entities.push_back(id);
  }
  std::sort(out.events.begin(), out.events.end());
  out.events.erase(std::unique(out.events.begin(), out.events.end()),
                   out.events.end());
  return out;
}

}  // namespace

DependencySubgraph TrackBackward(const GraphStore& graph,
                                 const std::vector<EventId>& seeds,
                                 const TrackingOptions& options) {
  return Track(graph, seeds, options, /*backward=*/true);
}

DependencySubgraph TrackForward(const GraphStore& graph,
                                const std::vector<EventId>& seeds,
                                const TrackingOptions& options) {
  return Track(graph, seeds, options, /*backward=*/false);
}

DependencySubgraph TrackBidirectional(const GraphStore& graph,
                                      const std::vector<EventId>& seeds,
                                      const TrackingOptions& options) {
  DependencySubgraph back = TrackBackward(graph, seeds, options);
  DependencySubgraph fwd = TrackForward(graph, seeds, options);
  DependencySubgraph out;
  out.events.reserve(back.events.size() + fwd.events.size());
  std::merge(back.events.begin(), back.events.end(), fwd.events.begin(),
             fwd.events.end(), std::back_inserter(out.events));
  out.events.erase(std::unique(out.events.begin(), out.events.end()),
                   out.events.end());
  std::merge(back.entities.begin(), back.entities.end(),
             fwd.entities.begin(), fwd.entities.end(),
             std::back_inserter(out.entities));
  out.entities.erase(
      std::unique(out.entities.begin(), out.entities.end()),
      out.entities.end());
  return out;
}

}  // namespace raptor::graph
