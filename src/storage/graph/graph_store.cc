#include "storage/graph/graph_store.h"

#include <algorithm>
#include <atomic>

#include "common/thread_pool.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/resource.h"

namespace raptor::graph {

using audit::EntityId;
using audit::Operation;

GraphStore::GraphStore(const audit::AuditLog& log, bool degree_statistics)
    : log_(&log), degree_stats_enabled_(degree_statistics) {
  SyncWithLog();
}

void GraphStore::SyncWithLog() {
  out_.resize(log_->entity_count());
  in_.resize(log_->entity_count());
  edges_.reserve(log_->event_count());
  size_t first_new = edges_.size();
  size_t num_new = log_->event_count() - first_new;
  if (num_new >= 4096) {
    // Bulk load: pre-count the batch's degree per node and reserve each
    // adjacency vector once, instead of growing them edge by edge.
    std::vector<uint32_t> out_deg(out_.size(), 0);
    std::vector<uint32_t> in_deg(in_.size(), 0);
    for (size_t i = first_new; i < log_->event_count(); ++i) {
      const auto& ev = log_->event(i);
      ++out_deg[ev.subject];
      ++in_deg[ev.object];
    }
    for (size_t id = 0; id < out_.size(); ++id) {
      if (out_deg[id] != 0) out_[id].reserve(out_[id].size() + out_deg[id]);
      if (in_deg[id] != 0) in_[id].reserve(in_[id].size() + in_deg[id]);
    }
  }
  // Register nodes appended since the last sync with the degree stats
  // before their edges arrive, so every node sits in the degree-0 bucket
  // until an edge moves it.
  if (degree_stats_enabled_) {
    entity_types_.reserve(log_->entity_count());
    for (size_t id = stats_nodes_; id < log_->entity_count(); ++id) {
      uint8_t type = static_cast<uint8_t>(log_->entity(id).type);
      entity_types_.push_back(type);
      out_degrees_[type].AddNode();
      in_degrees_[type].AddNode();
    }
    stats_nodes_ = log_->entity_count();
  }
  for (size_t i = first_new; i < log_->event_count(); ++i) {
    const auto& ev = log_->event(i);
    size_t idx = edges_.size();
    edges_.push_back(GraphEdge{ev.id, ev.subject, ev.object, ev.op,
                               ev.start_time, ev.end_time, ev.bytes});
    std::vector<size_t>& out_vec = out_[ev.subject];
    std::vector<size_t>& in_vec = in_[ev.object];
    if (degree_stats_enabled_) {
      out_degrees_[entity_types_[ev.subject]].IncrementDegree(out_vec.size());
      in_degrees_[entity_types_[ev.object]].IncrementDegree(in_vec.size());
    }
    out_vec.push_back(idx);
    in_vec.push_back(idx);
  }
  // Re-charge the delta so raptor_mem_* gauges track adjacency growth.
  size_t now = ApproxBytes();
  obs::ResourceTracker::Default().Charge(
      obs::Component::kGraph,
      static_cast<int64_t>(now) - static_cast<int64_t>(charged_bytes_));
  charged_bytes_ = now;
}

GraphStore::~GraphStore() {
  obs::ResourceTracker::Default().Charge(
      obs::Component::kGraph, -static_cast<int64_t>(charged_bytes_));
}

size_t GraphStore::ApproxBytes() const {
  size_t total = edges_.capacity() * sizeof(GraphEdge);
  total += (out_.capacity() + in_.capacity()) *
           sizeof(std::vector<size_t>);
  for (const auto& adj : out_) total += adj.capacity() * sizeof(size_t);
  for (const auto& adj : in_) total += adj.capacity() * sizeof(size_t);
  return total;
}

std::vector<EntityId> GraphStore::FindNodes(const NodePredicate& pred) const {
  std::vector<EntityId> out;
  for (const auto& e : log_->entities()) {
    if (pred(e)) out.push_back(e.id);
  }
  return out;
}

/// \brief One DFS traversal's working set. Search effort is accumulated
/// locally and merged into the store's shared stats once per FindPaths
/// call, so concurrent searches never race on stats_.
struct GraphStore::SearchState {
  const NodePredicate* sink_pred = nullptr;
  const PathConstraints* constraints = nullptr;
  SearchLimits* limits = nullptr;
  /// Edges already charged against limits->max_edges before this traversal
  /// (the serial search counts cumulatively across sources; per-source
  /// replay resumes the count here).
  uint64_t initial_edges = 0;
  uint64_t edges = 0;
  uint64_t nodes = 0;
  std::vector<size_t> edge_stack;
  std::vector<bool> on_path;
  std::vector<PathMatch>* out = nullptr;
};

namespace {

struct SearchMetrics {
  obs::Counter* edges;
  obs::Counter* nodes;

  static SearchMetrics& Get() {
    static SearchMetrics* m = [] {
      auto* metrics = new SearchMetrics();
      metrics->edges = obs::Registry::Default().GetCounter(
          "raptor_graph_edges_traversed_total",
          "Edges traversed by variable-length path searches");
      metrics->nodes = obs::Registry::Default().GetCounter(
          "raptor_graph_nodes_expanded_total",
          "Nodes expanded by variable-length path searches");
      return metrics;
    }();
    return *m;
  }
};

/// Per-source record of the speculative parallel phase. `ran` is false for
/// sources skipped after a stop flag; those (and budget-tripped sources)
/// are re-run serially at commit.
struct SourceRun {
  std::vector<PathMatch> matches;
  uint64_t edges = 0;
  uint64_t nodes = 0;
  bool ran = false;
  bool hit = false;
  const char* reason = "";
};

}  // namespace

void GraphStore::Dfs(SearchState* s, EntityId node) const {
  size_t depth = s->edge_stack.size();
  if (depth >= s->constraints->max_hops) return;
  SearchLimits* limits = s->limits;
  if (limits != nullptr) {
    if (limits->hit) return;
    if (limits->max_edges != 0 &&
        s->initial_edges + s->edges > limits->max_edges) {
      limits->hit = true;
      limits->reason = "max_edges";
      return;
    }
    if (limits->deadline != std::chrono::steady_clock::time_point{} &&
        std::chrono::steady_clock::now() > limits->deadline) {
      limits->hit = true;
      limits->reason = "deadline";
      return;
    }
  }
  ++s->nodes;

  audit::Timestamp min_time =
      s->edge_stack.empty() ? INT64_MIN
                            : edges_[s->edge_stack.back()].start_time;

  for (size_t edge_idx : out_[node]) {
    if (limits != nullptr && limits->hit) return;
    const GraphEdge& e = edges_[edge_idx];
    ++s->edges;
    if (limits != nullptr && limits->shared_edges != nullptr) {
      uint64_t total =
          limits->shared_edges->fetch_add(1, std::memory_order_relaxed) + 1;
      if (limits->shared_max_edges != 0 &&
          total > limits->shared_max_edges) {
        limits->hit = true;
        limits->reason = "max_edges";
        return;
      }
    }
    if (s->on_path[e.dst]) continue;
    if (s->constraints->monotonic_time && e.start_time < min_time) continue;
    if (s->constraints->window_start &&
        e.start_time < *s->constraints->window_start) {
      continue;
    }
    if (s->constraints->window_end &&
        e.start_time > *s->constraints->window_end) {
      continue;
    }

    size_t hop_number = depth + 1;  // 1-based
    const PathConstraints& constraints = *s->constraints;
    bool final_op_ok =
        constraints.final_ops.empty() ||
        std::find(constraints.final_ops.begin(), constraints.final_ops.end(),
                  e.op) != constraints.final_ops.end();
    bool can_be_final = hop_number >= constraints.min_hops && final_op_ok;

    // As a final hop: sink must match.
    if (can_be_final && (*s->sink_pred)(log_->entity(e.dst))) {
      PathMatch m;
      s->edge_stack.push_back(edge_idx);
      m.hops.reserve(s->edge_stack.size());
      for (size_t idx : s->edge_stack) m.hops.push_back(edges_[idx].event_id);
      m.source = edges_[s->edge_stack.front()].src;
      m.sink = e.dst;
      s->out->push_back(std::move(m));
      s->edge_stack.pop_back();
    }

    // As an intermediate hop: op must be an allowed chaining op and there
    // must be room for at least one more hop.
    if (hop_number < constraints.max_hops) {
      bool chainable =
          std::find(constraints.intermediate_ops.begin(),
                    constraints.intermediate_ops.end(),
                    e.op) != constraints.intermediate_ops.end();
      if (chainable) {
        s->edge_stack.push_back(edge_idx);
        s->on_path[e.dst] = true;
        Dfs(s, e.dst);
        s->on_path[e.dst] = false;
        s->edge_stack.pop_back();
      }
    }
  }
}

std::vector<PathMatch> GraphStore::FindPaths(
    const std::vector<EntityId>& sources, const NodePredicate& sink_pred,
    const PathConstraints& constraints, SearchLimits* limits,
    const SearchParallelism* parallel) const {
  SearchMetrics& metrics = SearchMetrics::Get();
  std::vector<PathMatch> matches;

  // Actual work performed (including speculative work the parallel commit
  // discards) feeds the process-wide effort counters; the deterministic
  // committed totals feed the SearchLimits outputs.
  uint64_t actual_edges = 0;
  uint64_t actual_nodes = 0;
  uint64_t committed_edges = 0;
  uint64_t committed_nodes = 0;

  size_t ways = 1;
  if (parallel != nullptr && parallel->pool != nullptr) {
    ways = parallel->num_threads == 0 ? parallel->pool->size() + 1
                                      : parallel->num_threads;
  }
  bool run_parallel =
      ways > 1 &&
      sources.size() >= 2 * std::max<size_t>(1, parallel->min_sources_per_task);

  if (!run_parallel) {
    SearchState s;
    s.sink_pred = &sink_pred;
    s.constraints = &constraints;
    s.limits = limits;
    s.on_path.assign(num_nodes(), false);
    s.out = &matches;
    for (EntityId src : sources) {
      if (limits != nullptr && limits->hit) break;
      if (src >= num_nodes()) continue;
      s.on_path[src] = true;
      Dfs(&s, src);
      s.on_path[src] = false;
    }
    actual_edges = committed_edges = s.edges;
    actual_nodes = committed_nodes = s.nodes;
  } else {
    // Speculative phase: each source searched independently against the
    // shared edge budget; a deadline or budget hit stops the fleet.
    std::vector<SourceRun> runs(sources.size());
    std::atomic<uint64_t> shared_total{0};
    std::atomic<bool> stop{false};
    parallel->pool->ParallelFor(
        sources.size(), parallel->min_sources_per_task,
        [&](size_t, size_t begin, size_t end) {
          SearchState s;
          s.sink_pred = &sink_pred;
          s.constraints = &constraints;
          s.on_path.assign(num_nodes(), false);
          for (size_t i = begin; i < end; ++i) {
            if (stop.load(std::memory_order_relaxed)) break;
            SourceRun& run = runs[i];
            run.ran = true;
            EntityId src = sources[i];
            if (src >= num_nodes()) continue;
            SearchLimits task_limits;
            if (limits != nullptr) {
              task_limits.deadline = limits->deadline;
              if (limits->max_edges != 0) {
                task_limits.shared_edges = &shared_total;
                task_limits.shared_max_edges = limits->max_edges;
              }
            }
            s.limits = &task_limits;
            s.out = &run.matches;
            s.edges = 0;
            s.nodes = 0;
            s.edge_stack.clear();
            s.on_path[src] = true;
            Dfs(&s, src);
            s.on_path[src] = false;
            run.edges = s.edges;
            run.nodes = s.nodes;
            if (task_limits.hit) {
              run.hit = true;
              run.reason = task_limits.reason;
              stop.store(true, std::memory_order_relaxed);
            }
          }
        },
        ways);

    // Ordered commit: concatenate per-source matches in source order — the
    // serial result exactly. A source that tripped a limit, was skipped
    // after the stop flag, or would push the cumulative count past the
    // budget is re-run serially with the cumulative budget the serial loop
    // would have had, so truncation is bit-for-bit serial too.
    SearchState replay;
    replay.sink_pred = &sink_pred;
    replay.constraints = &constraints;
    replay.on_path.assign(num_nodes(), false);
    for (size_t i = 0; i < sources.size(); ++i) {
      if (limits != nullptr && limits->hit) break;
      SourceRun& run = runs[i];
      actual_edges += run.edges;
      actual_nodes += run.nodes;
      bool over_budget = limits != nullptr && limits->max_edges != 0 &&
                         committed_edges + run.edges > limits->max_edges;
      if (run.ran && !run.hit && !over_budget) {
        for (PathMatch& m : run.matches) matches.push_back(std::move(m));
        committed_edges += run.edges;
        committed_nodes += run.nodes;
        continue;
      }
      EntityId src = sources[i];
      if (src >= num_nodes()) continue;
      SearchLimits sub;
      if (limits != nullptr) {
        sub.max_edges = limits->max_edges;
        sub.deadline = limits->deadline;
      }
      replay.limits = &sub;
      replay.out = &matches;
      replay.initial_edges = committed_edges;
      replay.edges = 0;
      replay.nodes = 0;
      replay.edge_stack.clear();
      replay.on_path[src] = true;
      Dfs(&replay, src);
      replay.on_path[src] = false;
      actual_edges += replay.edges;
      actual_nodes += replay.nodes;
      committed_edges += replay.edges;
      committed_nodes += replay.nodes;
      if (sub.hit && limits != nullptr) {
        limits->hit = true;
        limits->reason = sub.reason;
      }
    }
  }

  // One atomic merge per call: stats_ stays a plain struct but is safe
  // against concurrent FindPaths/Select-style readers and writers.
  std::atomic_ref<uint64_t>(stats_.edges_traversed)
      .fetch_add(actual_edges, std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(stats_.nodes_expanded)
      .fetch_add(actual_nodes, std::memory_order_relaxed);
  metrics.edges->Increment(actual_edges);
  metrics.nodes->Increment(actual_nodes);
  if (limits != nullptr) {
    limits->edges_traversed = committed_edges;
    limits->nodes_expanded = committed_nodes;
    if (limits->hit) {
      obs::Logger::Default()
          .Log(obs::LogLevel::kWarn, "storage", "path search limit hit")
          .Field("reason", std::string_view(limits->reason))
          .Field("edges_traversed", committed_edges)
          .Field("matches", static_cast<uint64_t>(matches.size()));
    }
  }
  return matches;
}

}  // namespace raptor::graph
