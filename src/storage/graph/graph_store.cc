#include "storage/graph/graph_store.h"

#include <algorithm>

#include "obs/log.h"
#include "obs/metrics.h"

namespace raptor::graph {

using audit::EntityId;
using audit::Operation;

GraphStore::GraphStore(const audit::AuditLog& log) : log_(&log) {
  SyncWithLog();
}

void GraphStore::SyncWithLog() {
  out_.resize(log_->entity_count());
  in_.resize(log_->entity_count());
  edges_.reserve(log_->event_count());
  for (size_t i = edges_.size(); i < log_->event_count(); ++i) {
    const auto& ev = log_->event(i);
    size_t idx = edges_.size();
    edges_.push_back(GraphEdge{ev.id, ev.subject, ev.object, ev.op,
                               ev.start_time, ev.end_time, ev.bytes});
    out_[ev.subject].push_back(idx);
    in_[ev.object].push_back(idx);
  }
}

std::vector<EntityId> GraphStore::FindNodes(const NodePredicate& pred) const {
  std::vector<EntityId> out;
  for (const auto& e : log_->entities()) {
    if (pred(e)) out.push_back(e.id);
  }
  return out;
}

std::vector<PathMatch> GraphStore::FindPaths(
    const std::vector<EntityId>& sources, const NodePredicate& sink_pred,
    const PathConstraints& constraints, SearchLimits* limits) const {
  // Process-wide search-effort counters, updated once per FindPaths call
  // with the deltas the search accumulated in stats_.
  static obs::Counter* edges_traversed = obs::Registry::Default().GetCounter(
      "raptor_graph_edges_traversed_total",
      "Edges traversed by variable-length path searches");
  static obs::Counter* nodes_expanded = obs::Registry::Default().GetCounter(
      "raptor_graph_nodes_expanded_total",
      "Nodes expanded by variable-length path searches");

  std::vector<PathMatch> matches;
  std::vector<bool> on_path(num_nodes(), false);
  std::vector<size_t> edge_stack;
  uint64_t edges_at_start = stats_.edges_traversed;
  uint64_t nodes_at_start = stats_.nodes_expanded;
  for (EntityId src : sources) {
    if (limits != nullptr && limits->hit) break;
    if (src >= num_nodes()) continue;
    on_path[src] = true;
    Dfs(src, sink_pred, constraints, limits, edges_at_start, &edge_stack,
        &on_path, &matches);
    on_path[src] = false;
  }
  edges_traversed->Increment(stats_.edges_traversed - edges_at_start);
  nodes_expanded->Increment(stats_.nodes_expanded - nodes_at_start);
  if (limits != nullptr && limits->hit) {
    obs::Logger::Default()
        .Log(obs::LogLevel::kWarn, "storage", "path search limit hit")
        .Field("reason", std::string_view(limits->reason))
        .Field("edges_traversed", stats_.edges_traversed - edges_at_start)
        .Field("matches", static_cast<uint64_t>(matches.size()));
  }
  return matches;
}

void GraphStore::Dfs(EntityId node, const NodePredicate& sink_pred,
                     const PathConstraints& constraints, SearchLimits* limits,
                     uint64_t edges_at_start, std::vector<size_t>* edge_stack,
                     std::vector<bool>* on_path,
                     std::vector<PathMatch>* out) const {
  size_t depth = edge_stack->size();
  if (depth >= constraints.max_hops) return;
  if (limits != nullptr) {
    if (limits->hit) return;
    if (limits->max_edges != 0 &&
        stats_.edges_traversed - edges_at_start > limits->max_edges) {
      limits->hit = true;
      limits->reason = "max_edges";
      return;
    }
    if (limits->deadline != std::chrono::steady_clock::time_point{} &&
        std::chrono::steady_clock::now() > limits->deadline) {
      limits->hit = true;
      limits->reason = "deadline";
      return;
    }
  }
  ++stats_.nodes_expanded;

  audit::Timestamp min_time =
      edge_stack->empty() ? INT64_MIN : edges_[edge_stack->back()].start_time;

  for (size_t edge_idx : out_[node]) {
    if (limits != nullptr && limits->hit) return;
    const GraphEdge& e = edges_[edge_idx];
    ++stats_.edges_traversed;
    if ((*on_path)[e.dst]) continue;
    if (constraints.monotonic_time && e.start_time < min_time) continue;
    if (constraints.window_start && e.start_time < *constraints.window_start) {
      continue;
    }
    if (constraints.window_end && e.start_time > *constraints.window_end) {
      continue;
    }

    size_t hop_number = depth + 1;  // 1-based
    bool final_op_ok =
        constraints.final_ops.empty() ||
        std::find(constraints.final_ops.begin(), constraints.final_ops.end(),
                  e.op) != constraints.final_ops.end();
    bool can_be_final = hop_number >= constraints.min_hops && final_op_ok;

    // As a final hop: sink must match.
    if (can_be_final && sink_pred(log_->entity(e.dst))) {
      PathMatch m;
      edge_stack->push_back(edge_idx);
      m.hops.reserve(edge_stack->size());
      for (size_t idx : *edge_stack) m.hops.push_back(edges_[idx].event_id);
      m.source = edges_[edge_stack->front()].src;
      m.sink = e.dst;
      out->push_back(std::move(m));
      edge_stack->pop_back();
    }

    // As an intermediate hop: op must be an allowed chaining op and there
    // must be room for at least one more hop.
    if (hop_number < constraints.max_hops) {
      bool chainable =
          std::find(constraints.intermediate_ops.begin(),
                    constraints.intermediate_ops.end(),
                    e.op) != constraints.intermediate_ops.end();
      if (chainable) {
        edge_stack->push_back(edge_idx);
        (*on_path)[e.dst] = true;
        Dfs(e.dst, sink_pred, constraints, limits, edges_at_start, edge_stack,
            on_path, out);
        (*on_path)[e.dst] = false;
        edge_stack->pop_back();
      }
    }
  }
}

}  // namespace raptor::graph
