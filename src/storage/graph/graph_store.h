// GraphStore: the graph backend (paper §II-B, Neo4j stand-in).
//
// System entities are nodes, system events are edges. Adjacency indexes
// make neighborhood expansion O(degree), and the variable-length path
// matcher implements the search that TBQL path patterns
// (`proc p ~>(2~4)[read] file f`, §II-D) compile to — the paper compiles
// these to Cypher because SQL handles graph pattern search poorly.

#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <optional>
#include <vector>

#include "audit/log.h"
#include "storage/stats/table_statistics.h"

namespace raptor {
class ThreadPool;
}

namespace raptor::graph {

/// \brief One directed edge (a system event) in the graph.
struct GraphEdge {
  audit::EventId event_id = 0;
  audit::EntityId src = audit::kInvalidEntityId;
  audit::EntityId dst = audit::kInvalidEntityId;
  audit::Operation op = audit::Operation::kRead;
  audit::Timestamp start_time = 0;
  audit::Timestamp end_time = 0;
  uint64_t bytes = 0;
};

/// Predicate over a node's entity attributes.
using NodePredicate = std::function<bool(const audit::SystemEntity&)>;

/// \brief Constraints for a variable-length path search.
struct PathConstraints {
  size_t min_hops = 1;
  size_t max_hops = 1;
  /// Allowed operations of the final hop (the `[read]` in the TBQL syntax);
  /// empty accepts any operation.
  std::vector<audit::Operation> final_ops;
  /// Operations allowed on intermediate hops. The paper motivates path
  /// patterns with "intermediate processes are forked to chain system
  /// events", so process-chaining operations are the default.
  std::vector<audit::Operation> intermediate_ops = {
      audit::Operation::kFork, audit::Operation::kStart,
      audit::Operation::kExecute};
  /// Require event times to be non-decreasing along the path (causality).
  bool monotonic_time = true;
  /// Optional time window applied to every event on the path.
  std::optional<audit::Timestamp> window_start;
  std::optional<audit::Timestamp> window_end;
};

/// \brief One matched path: the event ids of its hops, in order.
struct PathMatch {
  std::vector<audit::EventId> hops;

  audit::EntityId source = audit::kInvalidEntityId;
  audit::EntityId sink = audit::kInvalidEntityId;
};

/// \brief Search-effort counters for the benches.
struct GraphStats {
  uint64_t edges_traversed = 0;
  uint64_t nodes_expanded = 0;
};

/// \brief Effort bounds for one FindPaths call. A bounded search stops as
/// soon as a limit trips and returns the (valid, partial) matches found so
/// far; `hit` reports which limit stopped it.
struct SearchLimits {
  /// Maximum edges traversed within this search; 0 = unbounded.
  uint64_t max_edges = 0;
  /// Wall-clock cutoff; time_point{} (the epoch default) = unbounded. The
  /// clock is polled once per node expansion.
  std::chrono::steady_clock::time_point deadline{};
  /// Optional edge budget shared with concurrently running searches (the
  /// engine points every member of a parallel scheduling wave at one
  /// atomic): each traversed edge also counts against *shared_edges, and
  /// exceeding shared_max_edges trips the search like max_edges does. The
  /// caller is responsible for making the overall result deterministic
  /// (the engine re-runs budget-tripped members serially in commit order).
  std::atomic<uint64_t>* shared_edges = nullptr;
  uint64_t shared_max_edges = 0;

  /// Output: set when a limit stopped the search early.
  bool hit = false;
  /// Output: "max_edges" or "deadline" when hit.
  const char* reason = "";
  /// Output: search effort committed to this call's result. Unlike the
  /// process-wide stats()/metrics counters these are deterministic at any
  /// thread count (speculative work discarded by the parallel search is
  /// not included).
  uint64_t edges_traversed = 0;
  uint64_t nodes_expanded = 0;
};

/// \brief Parallel-search knobs for FindPaths: independent source entities
/// are searched concurrently and their matches committed in source order,
/// so the result (matches, limit hits, SearchLimits effort outputs) is
/// byte-identical to the serial search. Sources that trip a budget are
/// re-run serially with the exact remaining budget to keep `max_edges`
/// semantics bit-for-bit.
struct SearchParallelism {
  ThreadPool* pool = nullptr;
  /// Parallelism cap (0 = pool size + 1, 1 = serial).
  size_t num_threads = 1;
  /// Minimum sources per worker task.
  size_t min_sources_per_task = 4;
};

/// \brief Adjacency-indexed property graph over one AuditLog.
class GraphStore {
 public:
  /// Builds nodes and adjacency from `log`; `log` must outlive the store.
  /// `degree_statistics` = false skips degree-distribution maintenance
  /// (the stats-overhead bench's control arm).
  explicit GraphStore(const audit::AuditLog& log,
                      bool degree_statistics = true);
  ~GraphStore();

  /// Appends any entities/events added to the log since construction (or
  /// the last sync) — the live-ingestion path. Existing edges are never
  /// touched, so iterators/indexes held elsewhere stay valid.
  void SyncWithLog();

  size_t num_nodes() const { return out_.size(); }
  size_t num_edges() const { return edges_.size(); }

  const audit::SystemEntity& node(audit::EntityId id) const {
    return log_->entity(id);
  }
  const GraphEdge& edge(size_t idx) const { return edges_[idx]; }

  /// Outgoing/incoming edge indexes for a node.
  const std::vector<size_t>& OutEdges(audit::EntityId id) const {
    return out_[id];
  }
  const std::vector<size_t>& InEdges(audit::EntityId id) const {
    return in_[id];
  }

  /// All node ids whose entity satisfies `pred`.
  std::vector<audit::EntityId> FindNodes(const NodePredicate& pred) const;

  /// Finds every path that starts at a node in `sources`, ends at a node
  /// satisfying `sink_pred`, and satisfies `constraints`. Paths are simple
  /// (no repeated node). DFS with depth bound max_hops. When `limits` is
  /// non-null the search is bounded: it stops early once a limit trips
  /// (reported through the limits struct) and returns the partial matches.
  /// When `parallel` provides a pool, independent sources are searched
  /// concurrently with matches committed in source order (see
  /// SearchParallelism); the result is identical to the serial search.
  std::vector<PathMatch> FindPaths(const std::vector<audit::EntityId>& sources,
                                   const NodePredicate& sink_pred,
                                   const PathConstraints& constraints,
                                   SearchLimits* limits = nullptr,
                                   const SearchParallelism* parallel =
                                       nullptr) const;

  const GraphStats& stats() const { return stats_; }
  void ResetStats() { stats_ = GraphStats{}; }

  /// Approximate bytes of the edge list + adjacency indexes.
  size_t ApproxBytes() const;

  // --- Degree statistics (maintained incrementally at build/sync). ---

  /// Disables/enables degree-distribution maintenance for subsequent syncs
  /// (the stats-overhead bench's control arm).
  void SetDegreeStatisticsEnabled(bool enabled) {
    degree_stats_enabled_ = enabled;
  }
  bool degree_statistics_enabled() const { return degree_stats_enabled_; }

  /// Out/in degree distribution of nodes of one entity type. Degrees count
  /// edges (events), so a process that wrote one file twice has out
  /// degree 2.
  const stats::DegreeDistribution& OutDegreeStatistics(
      audit::EntityType type) const {
    return out_degrees_[static_cast<size_t>(type)];
  }
  const stats::DegreeDistribution& InDegreeStatistics(
      audit::EntityType type) const {
    return in_degrees_[static_cast<size_t>(type)];
  }

 private:
  struct SearchState;  // defined in graph_store.cc
  void Dfs(SearchState* state, audit::EntityId node) const;

  const audit::AuditLog* log_;
  std::vector<GraphEdge> edges_;
  std::vector<std::vector<size_t>> out_;
  std::vector<std::vector<size_t>> in_;
  mutable GraphStats stats_;
  size_t charged_bytes_ = 0;  ///< Bytes reported to the ResourceTracker.
  bool degree_stats_enabled_ = true;
  size_t stats_nodes_ = 0;  ///< Nodes already registered with the stats.
  /// Dense per-entity type cache for the per-edge degree updates: the
  /// AuditLog entity structs are string-heavy, so reading `.type` through
  /// them costs a cache miss per edge endpoint; one byte per entity keeps
  /// the whole map in L2.
  std::vector<uint8_t> entity_types_;
  stats::DegreeDistribution out_degrees_[3];  // indexed by EntityType
  stats::DegreeDistribution in_degrees_[3];
};

}  // namespace raptor::graph
