#include "storage/persist/snapshot.h"

#include <cstdio>
#include <cstring>

#include "common/strings.h"

namespace raptor::persist {

namespace {

constexpr char kMagic[8] = {'R', 'A', 'P', 'T', 'R', 'L', 'O', 'G'};

// --- Little-endian primitives over a growing buffer. ---

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8() {
    RAPTOR_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(static_cast<unsigned char>(data_[pos_++]));
  }

  Result<uint32_t> U32() {
    RAPTOR_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    RAPTOR_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<std::string> String() {
    RAPTOR_ASSIGN_OR_RETURN(uint32_t len, U32());
    RAPTOR_RETURN_NOT_OK(Need(len));
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  size_t position() const { return pos_; }

 private:
  Status Need(size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::ParseError("snapshot truncated");
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool initialized = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)initialized;
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeSnapshot(const audit::AuditLog& log) {
  std::string out(kMagic, sizeof(kMagic));
  PutU32(&out, kSnapshotVersion);

  PutU64(&out, log.entity_count());
  for (const audit::SystemEntity& e : log.entities()) {
    out.push_back(static_cast<char>(e.type));
    switch (e.type) {
      case audit::EntityType::kFile:
        PutString(&out, e.path);
        break;
      case audit::EntityType::kProcess:
        PutU32(&out, e.pid);
        PutString(&out, e.exename);
        break;
      case audit::EntityType::kNetwork:
        PutString(&out, e.src_ip);
        PutU32(&out, e.src_port);
        PutString(&out, e.dst_ip);
        PutU32(&out, e.dst_port);
        PutString(&out, e.protocol);
        break;
    }
  }

  PutU64(&out, log.event_count());
  for (const audit::SystemEvent& ev : log.events()) {
    PutU64(&out, ev.subject);
    PutU64(&out, ev.object);
    out.push_back(static_cast<char>(ev.op));
    PutU64(&out, static_cast<uint64_t>(ev.start_time));
    PutU64(&out, static_cast<uint64_t>(ev.end_time));
    PutU64(&out, ev.bytes);
    PutU32(&out, ev.merged_count);
  }

  PutU32(&out, Crc32(out));
  return out;
}

Result<audit::AuditLog> DecodeSnapshot(std::string_view data) {
  if (data.size() < sizeof(kMagic) + 8 ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not a ThreatRaptor snapshot (bad magic)");
  }
  // Verify the CRC over everything except the 4-byte trailer.
  std::string_view body = data.substr(0, data.size() - 4);
  Reader crc_reader(data.substr(data.size() - 4));
  RAPTOR_ASSIGN_OR_RETURN(uint32_t stored_crc, crc_reader.U32());
  if (Crc32(body) != stored_crc) {
    return Status::ParseError("snapshot checksum mismatch");
  }

  Reader reader(body.substr(sizeof(kMagic)));
  RAPTOR_ASSIGN_OR_RETURN(uint32_t version, reader.U32());
  if (version != kSnapshotVersion) {
    return Status::Unsupported(
        StrFormat("snapshot version %u not supported", version));
  }

  audit::AuditLog log;
  RAPTOR_ASSIGN_OR_RETURN(uint64_t entity_count, reader.U64());
  for (uint64_t i = 0; i < entity_count; ++i) {
    RAPTOR_ASSIGN_OR_RETURN(uint8_t type_byte, reader.U8());
    if (type_byte > static_cast<uint8_t>(audit::EntityType::kNetwork)) {
      return Status::ParseError(
          StrFormat("snapshot has bad entity type %u", type_byte));
    }
    audit::EntityId id = audit::kInvalidEntityId;
    switch (static_cast<audit::EntityType>(type_byte)) {
      case audit::EntityType::kFile: {
        RAPTOR_ASSIGN_OR_RETURN(std::string path, reader.String());
        id = log.InternFile(std::move(path));
        break;
      }
      case audit::EntityType::kProcess: {
        RAPTOR_ASSIGN_OR_RETURN(uint32_t pid, reader.U32());
        RAPTOR_ASSIGN_OR_RETURN(std::string exe, reader.String());
        id = log.InternProcess(pid, std::move(exe));
        break;
      }
      case audit::EntityType::kNetwork: {
        RAPTOR_ASSIGN_OR_RETURN(std::string src_ip, reader.String());
        RAPTOR_ASSIGN_OR_RETURN(uint32_t src_port, reader.U32());
        RAPTOR_ASSIGN_OR_RETURN(std::string dst_ip, reader.String());
        RAPTOR_ASSIGN_OR_RETURN(uint32_t dst_port, reader.U32());
        RAPTOR_ASSIGN_OR_RETURN(std::string protocol, reader.String());
        id = log.InternNetwork(std::move(src_ip),
                               static_cast<uint16_t>(src_port),
                               std::move(dst_ip),
                               static_cast<uint16_t>(dst_port),
                               std::move(protocol));
        break;
      }
    }
    // Interning must reproduce ids densely in write order; duplicates in a
    // valid snapshot are impossible (the source log was interned).
    if (id != i) {
      return Status::ParseError("snapshot entity ids are not dense");
    }
  }

  RAPTOR_ASSIGN_OR_RETURN(uint64_t event_count, reader.U64());
  for (uint64_t i = 0; i < event_count; ++i) {
    audit::SystemEvent ev;
    RAPTOR_ASSIGN_OR_RETURN(ev.subject, reader.U64());
    RAPTOR_ASSIGN_OR_RETURN(ev.object, reader.U64());
    RAPTOR_ASSIGN_OR_RETURN(uint8_t op_byte, reader.U8());
    if (op_byte > static_cast<uint8_t>(audit::Operation::kRecv)) {
      return Status::ParseError(
          StrFormat("snapshot has bad operation %u", op_byte));
    }
    ev.op = static_cast<audit::Operation>(op_byte);
    RAPTOR_ASSIGN_OR_RETURN(uint64_t start, reader.U64());
    RAPTOR_ASSIGN_OR_RETURN(uint64_t end, reader.U64());
    ev.start_time = static_cast<audit::Timestamp>(start);
    ev.end_time = static_cast<audit::Timestamp>(end);
    RAPTOR_ASSIGN_OR_RETURN(ev.bytes, reader.U64());
    RAPTOR_ASSIGN_OR_RETURN(ev.merged_count, reader.U32());
    if (ev.subject >= log.entity_count() || ev.object >= log.entity_count()) {
      return Status::ParseError("snapshot event references unknown entity");
    }
    if (log.entity(ev.subject).type != audit::EntityType::kProcess) {
      return Status::ParseError("snapshot event subject is not a process");
    }
    log.AddEvent(ev);
  }
  return log;
}

Status SaveSnapshot(const audit::AuditLog& log, const std::string& path) {
  std::string data = EncodeSnapshot(log);
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + tmp + " for writing");
  }
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  bool ok = (written == data.size()) && (std::fclose(f) == 0);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<audit::AuditLog> LoadSnapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open snapshot " + path);
  }
  std::string data;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    data.append(buffer, n);
  }
  std::fclose(f);
  return DecodeSnapshot(data);
}

}  // namespace raptor::persist
