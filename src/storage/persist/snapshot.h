// Durable trace snapshots.
//
// The paper persists collected data in PostgreSQL/Neo4j; this embedded
// reproduction persists the canonical AuditLog (from which both backends
// load deterministically) as a single binary snapshot file: magic +
// version header, length-prefixed records, CRC32 trailer. Corruption and
// truncation are detected on load.

#pragma once

#include <string>

#include "audit/log.h"
#include "common/result.h"

namespace raptor::persist {

/// Current snapshot format version.
inline constexpr uint32_t kSnapshotVersion = 1;

/// Serializes `log` into the snapshot byte format.
std::string EncodeSnapshot(const audit::AuditLog& log);

/// Decodes a snapshot buffer back into an AuditLog. Fails with ParseError
/// on bad magic, unsupported version, truncation, or checksum mismatch.
Result<audit::AuditLog> DecodeSnapshot(std::string_view data);

/// Writes `log` to `path` (atomically: temp file + rename).
Status SaveSnapshot(const audit::AuditLog& log, const std::string& path);

/// Reads a snapshot file.
Result<audit::AuditLog> LoadSnapshot(const std::string& path);

/// CRC32 (IEEE) used by the trailer; exposed for tests.
uint32_t Crc32(std::string_view data);

}  // namespace raptor::persist
