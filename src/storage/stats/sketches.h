// Streaming sketches for the data-statistics subsystem (paper §II-F's
// pruning scores need selectivity knowledge; ROADMAP item 2's
// selectivity-fed execution needs a statistics layer to read from).
//
// Three single-pass, incrementally-maintained summaries:
//   HyperLogLog        number-of-distinct-values (NDV) per column
//   SpaceSavingTopK    heavy hitters (the most frequent values) per column
//   EquiDepthHistogram value distribution of the event time columns, built
//                      from a bounded deterministic reservoir sample
//
// All three are deterministic functions of the insertion sequence — stats
// are maintained only on the serial load/sync path, so two processes that
// ingest the same trace hold byte-identical statistics, which in turn keeps
// the cardinality estimator (and through it the scheduler) deterministic at
// any query thread count.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace raptor::stats {

/// 64-bit mixing hash for sketch input (splitmix64 finalizer). Stable
/// across platforms and runs — no seed, no address-based state.
uint64_t MixHash(uint64_t x);

/// Hash of a string value for sketch input (FNV-1a folded through
/// MixHash). Stable across platforms and runs.
uint64_t HashBytes(std::string_view bytes);

/// \brief HyperLogLog distinct-value counter.
///
/// 2^precision one-byte registers (precision 10 = 1 KiB) give a relative
/// standard error of about 1.04 / sqrt(2^precision) ≈ 3.2%. Small
/// cardinalities use the linear-counting correction, so exact-ish answers
/// come back for the low hundreds of distinct values.
class HyperLogLog {
 public:
  explicit HyperLogLog(int precision = 10);

  /// Adds one (pre-hashed) value.
  void Add(uint64_t hash);

  /// Estimated number of distinct values added.
  double Estimate() const;

  /// Exact number of Add() calls (for density diagnostics).
  uint64_t AddCount() const { return adds_; }

  size_t MemoryBytes() const { return registers_.size() + sizeof(*this); }

 private:
  int precision_;
  uint64_t adds_ = 0;
  std::vector<uint8_t> registers_;  // 2^precision_
};

/// \brief Space-Saving heavy-hitter sketch (Metwally et al.): tracks the
/// top `capacity` most frequent values of a stream with bounded
/// overcounting. A value's reported count overestimates its true count by
/// at most its `error` field; values whose true count exceeds
/// total/capacity are guaranteed to be tracked.
///
/// Templated on the key type so int64 columns feed raw integers — no
/// per-row string conversion. Slots live in a flat array sized `capacity`
/// (16 by default): lookup and eviction are short linear scans and an
/// eviction rewrites a slot in place, so the steady state allocates
/// nothing per Add(). Scan order — and therefore eviction tie-breaking —
/// is a deterministic function of the insertion sequence.
template <typename Key>
class SpaceSavingSketch {
 public:
  explicit SpaceSavingSketch(size_t capacity = 16)
      : capacity_(capacity == 0 ? 1 : capacity) {
    slots_.reserve(capacity_);
  }

  struct HeavyHitter {
    Key key{};
    uint64_t count = 0;  ///< Estimated count (upper bound).
    uint64_t error = 0;  ///< Maximum overcount baked into `count`.
  };

  void Add(const Key& key) {
    ++total_;
    for (Slot& s : slots_) {
      if (s.key == key) {
        ++s.count;
        return;
      }
    }
    if (slots_.size() < capacity_) {
      slots_.push_back(Slot{key, 1, 0});
      return;
    }
    // Evict a minimum-count slot (the first one in scan order) and
    // inherit its count as the new key's overcount bound. Rewriting the
    // slot in place reuses a string key's capacity.
    Slot* victim = &slots_[0];
    for (Slot& s : slots_) {
      if (s.count < victim->count) victim = &s;
    }
    victim->error = victim->count;
    ++victim->count;
    victim->key = key;
  }

  /// Tracked values, most frequent first (ties by key for determinism).
  std::vector<HeavyHitter> TopK() const {
    std::vector<HeavyHitter> out;
    out.reserve(slots_.size());
    for (const Slot& s : slots_) {
      out.push_back(HeavyHitter{s.key, s.count, s.error});
    }
    std::sort(out.begin(), out.end(),
              [](const HeavyHitter& a, const HeavyHitter& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.key < b.key;
              });
    return out;
  }

  /// Estimated count of `key` when tracked; nullopt when the sketch
  /// evicted (or never saw) it.
  std::optional<uint64_t> EstimateCount(const Key& key) const {
    for (const Slot& s : slots_) {
      if (s.key == key) return s.count;
    }
    return std::nullopt;
  }

  /// Total stream length (all Add() calls).
  uint64_t TotalCount() const { return total_; }

  /// Largest guaranteed true count across tracked values (count minus
  /// overcount bound); 0 when empty. A stream with no value above the
  /// noise floor keeps this near zero — the signal column statistics use
  /// to drop sketches that are not finding anything heavy.
  uint64_t MaxGuaranteedCount() const {
    uint64_t best = 0;
    for (const Slot& s : slots_) {
      best = std::max(best, s.count - s.error);
    }
    return best;
  }

  /// Number of distinct values currently tracked (at most `capacity`).
  size_t TrackedCount() const { return slots_.size(); }

  size_t capacity() const { return capacity_; }

  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this) + slots_.capacity() * sizeof(Slot);
    if constexpr (std::is_same_v<Key, std::string>) {
      for (const Slot& s : slots_) bytes += s.key.capacity();
    }
    return bytes;
  }

 private:
  struct Slot {
    Key key{};
    uint64_t count = 0;
    uint64_t error = 0;
  };
  size_t capacity_;
  uint64_t total_ = 0;
  std::vector<Slot> slots_;  // flat; at most capacity_ entries
};

using SpaceSavingTopK = SpaceSavingSketch<std::string>;
using SpaceSavingTopKInt = SpaceSavingSketch<int64_t>;

/// \brief Equi-depth histogram over int64 values (event timestamps),
/// maintained from a bounded deterministic reservoir sample.
///
/// Insertions feed a classic reservoir (Vitter's algorithm R) driven by a
/// fixed-seed linear congruential generator, so the retained sample — and
/// every selectivity answer — depends only on the insertion sequence.
/// `Buckets()` materializes `num_buckets` equal-mass buckets from the
/// sorted sample; `SelectivityBetween` interpolates inside the sample
/// without materializing buckets.
class EquiDepthHistogram {
 public:
  explicit EquiDepthHistogram(size_t sample_capacity = 2048,
                              size_t num_buckets = 16);

  void Add(int64_t value);

  uint64_t Count() const { return count_; }
  std::optional<int64_t> Min() const;
  std::optional<int64_t> Max() const;

  /// Estimated fraction of inserted values in [lo, hi] (inclusive; pass
  /// nullopt for an open end). 0 when empty.
  double SelectivityBetween(std::optional<int64_t> lo,
                            std::optional<int64_t> hi) const;

  struct Bucket {
    int64_t lo = 0;        ///< Inclusive lower edge.
    int64_t hi = 0;        ///< Inclusive upper edge.
    uint64_t est_count = 0;  ///< Estimated rows in the bucket.
  };

  /// Equal-mass buckets over the sample, scaled to the true count. Fewer
  /// buckets come back when the sample is smaller than `num_buckets`.
  std::vector<Bucket> Buckets() const;

  size_t MemoryBytes() const {
    return sample_.capacity() * sizeof(int64_t) + sizeof(*this);
  }

 private:
  /// Sorted view of the sample (cached between Add() calls).
  const std::vector<int64_t>& Sorted() const;

  size_t sample_capacity_;
  size_t num_buckets_;
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  uint64_t rng_state_;  ///< Fixed-seed LCG for the reservoir.
  std::vector<int64_t> sample_;
  mutable std::vector<int64_t> sorted_cache_;
  mutable bool sorted_dirty_ = false;
};

/// \brief Bounded deterministic reservoir of string values (algorithm R
/// with the same fixed-seed LCG as EquiDepthHistogram). The estimator
/// evaluates LIKE patterns against the sample to estimate match fractions.
class StringReservoir {
 public:
  explicit StringReservoir(size_t capacity = 256);

  void Add(const std::string& value);

  uint64_t Count() const { return count_; }
  const std::vector<std::string>& Sample() const { return sample_; }

  size_t MemoryBytes() const;

 private:
  size_t capacity_;
  uint64_t count_ = 0;
  uint64_t rng_state_;
  std::vector<std::string> sample_;
};

}  // namespace raptor::stats
