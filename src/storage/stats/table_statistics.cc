#include "storage/stats/table_statistics.h"

#include <algorithm>
#include <bit>

#include "common/strings.h"

namespace raptor::stats {

namespace {

// Heavy-hitter sketches are probed every kHeavyHitterProbe sketched adds:
// a column where no value has a guaranteed frequency of at least 1/256 by
// then has nothing heavy to report (Space-Saving only reliably retains
// values above total/capacity anyway), so the sketch is dropped and the
// estimator's uniform 1/NDV model takes over. The probe depends only on
// the insertion sequence, so dropping is deterministic. This is what
// keeps statistics maintenance cheap on high-NDV columns (timestamps,
// entity ids), where every add would otherwise churn an eviction.
constexpr uint64_t kHeavyHitterProbe = 4096;

template <typename Sketch>
bool SketchStillUseful(const Sketch& sketch, uint64_t sketch_adds) {
  return sketch.MaxGuaranteedCount() * 256 >= sketch_adds;
}

/// Shared equality-selectivity model over either sketch key type. All
/// masses are fractions of the sketched stream, which row sampling leaves
/// unbiased: exact-ish when tracked; exact-zero when the sketch never
/// saturated AND saw every row (an absent key then truly has count 0 —
/// under sampling it may merely be unsampled, so fall back to uniform);
/// uniform over the untracked rest otherwise.
template <typename Sketch, typename Key>
double SketchEqualitySelectivity(const Sketch& sketch, const Key& key,
                                 bool exact_stream, double ndv) {
  const double total = static_cast<double>(sketch.TotalCount());
  if (total <= 0) return 0.0;
  if (auto count = sketch.EstimateCount(key)) {
    return std::min(1.0, static_cast<double>(*count) / total);
  }
  if (sketch.TrackedCount() < sketch.capacity()) {
    return exact_stream ? 0.0 : std::min(1.0, 1.0 / std::max(1.0, ndv));
  }
  uint64_t tracked_mass = 0;
  for (const auto& hh : sketch.TopK()) tracked_mass += hh.count - hh.error;
  double rest_rows = total > static_cast<double>(tracked_mass)
                         ? total - static_cast<double>(tracked_mass)
                         : 1.0;
  double rest_ndv =
      std::max(1.0, ndv - static_cast<double>(sketch.TrackedCount()));
  return std::min(1.0, rest_rows / rest_ndv / total);
}

}  // namespace

// --- ColumnStatistics ---

ColumnStatistics::ColumnStatistics(std::string name, rel::ColumnType type,
                                   bool is_unique_id)
    : name_(std::move(name)), type_(type), is_unique_id_(is_unique_id) {
  if (!is_unique_id_) {
    if (type_ == rel::ColumnType::kString) {
      heavy_hitters_ = std::make_unique<SpaceSavingTopK>(16);
    } else if (type_ == rel::ColumnType::kInt64) {
      int_heavy_hitters_ = std::make_unique<SpaceSavingTopKInt>(16);
    }
  }
  if (type_ == rel::ColumnType::kInt64 && !is_unique_id_) {
    histogram_ = std::make_unique<EquiDepthHistogram>();
  }
  if (type_ == rel::ColumnType::kString && !is_unique_id_) {
    sample_ = std::make_unique<StringReservoir>();
  }
}

void ColumnStatistics::AddSketches(const rel::Value& value) {
  ++sketch_adds_;
  if (const int64_t* pv = value.IfInt()) {
    const int64_t v = *pv;
    ndv_.Add(MixHash(static_cast<uint64_t>(v)));
    if (int_heavy_hitters_ != nullptr) {
      int_heavy_hitters_->Add(v);
      if ((sketch_adds_ & (kHeavyHitterProbe - 1)) == 0 &&
          !SketchStillUseful(*int_heavy_hitters_, sketch_adds_)) {
        int_heavy_hitters_.reset();
      }
    }
    if (histogram_ != nullptr) histogram_->Add(v);
  } else if (const std::string* ps = value.IfString()) {
    const std::string& s = *ps;
    ndv_.Add(HashBytes(s));
    if (heavy_hitters_ != nullptr) {
      heavy_hitters_->Add(s);
      if ((sketch_adds_ & (kHeavyHitterProbe - 1)) == 0 &&
          !SketchStillUseful(*heavy_hitters_, sketch_adds_)) {
        heavy_hitters_.reset();
      }
    }
    if (sample_ != nullptr) sample_->Add(s);
  } else {
    ndv_.Add(HashBytes(value.ToString()));
  }
}

std::optional<rel::Value> ColumnStatistics::Min() const {
  if (int_min_ <= int_max_) return rel::Value(int_min_);
  if (has_string_range_) return rel::Value(string_min_);
  return std::nullopt;
}

std::optional<rel::Value> ColumnStatistics::Max() const {
  if (int_min_ <= int_max_) return rel::Value(int_max_);
  if (has_string_range_) return rel::Value(string_max_);
  return std::nullopt;
}

double ColumnStatistics::Ndv() const {
  if (adds_ == 0) return 0.0;
  // Unique-id columns are distinct by construction; report exactly.
  double est = is_unique_id_ ? static_cast<double>(adds_) : ndv_.Estimate();
  // Under row sampling the HLL only saw sketch_adds_ values. Columns that
  // repeat values are still fully represented in the sample; an estimate
  // tracking the sampled stream length means a mostly-unique column, so
  // scale it back up by the sampling factor.
  if (!is_unique_id_ && sketch_adds_ > 0 && sketch_adds_ < adds_ &&
      est >= 0.5 * static_cast<double>(sketch_adds_)) {
    est *= SketchScale();
  }
  est = std::min(est, static_cast<double>(adds_));
  return std::max(est, 1.0);
}

std::vector<SpaceSavingTopK::HeavyHitter> ColumnStatistics::HeavyHitters()
    const {
  std::vector<SpaceSavingTopK::HeavyHitter> out;
  if (heavy_hitters_ != nullptr) {
    out = heavy_hitters_->TopK();
  } else if (int_heavy_hitters_ != nullptr) {
    for (const auto& hh : int_heavy_hitters_->TopK()) {
      out.push_back({std::to_string(hh.key), hh.count, hh.error});
    }
  }
  // Counts are sketched-stream masses; scale to full-table rows.
  const double scale = SketchScale();
  if (scale > 1.0) {
    for (auto& hh : out) {
      hh.count = static_cast<uint64_t>(static_cast<double>(hh.count) * scale +
                                       0.5);
      hh.error = static_cast<uint64_t>(static_cast<double>(hh.error) * scale +
                                       0.5);
    }
  }
  return out;
}

double ColumnStatistics::EqualitySelectivity(const rel::Value& value,
                                             uint64_t rows) const {
  if (rows == 0 || adds_ == 0) return 0.0;
  if (is_unique_id_) return 1.0 / static_cast<double>(rows);
  const bool exact_stream = sketch_adds_ == adds_;
  if (value.is_int() && int_heavy_hitters_ != nullptr) {
    return SketchEqualitySelectivity(*int_heavy_hitters_, value.AsInt(),
                                     exact_stream, Ndv());
  }
  if (value.is_string() && heavy_hitters_ != nullptr) {
    return SketchEqualitySelectivity(*heavy_hitters_, value.AsString(),
                                     exact_stream, Ndv());
  }
  // No sketch (unique-id-adjacent, adaptively dropped, or type mismatch):
  // uniform model over the distinct values.
  return std::min(1.0, 1.0 / Ndv());
}

double ColumnStatistics::LikeSelectivity(
    const std::string& like_pattern) const {
  if (sample_ == nullptr || sample_->Sample().empty()) return 0.0;
  size_t matched = 0;
  for (const std::string& s : sample_->Sample()) {
    if (LikeMatch(s, like_pattern)) ++matched;
  }
  return static_cast<double>(matched) /
         static_cast<double>(sample_->Sample().size());
}

double ColumnStatistics::RangeSelectivity(std::optional<int64_t> lo,
                                          std::optional<int64_t> hi) const {
  if (histogram_ == nullptr) return 1.0;
  if (histogram_->Count() == 0) return 0.0;
  return histogram_->SelectivityBetween(lo, hi);
}

size_t ColumnStatistics::MemoryBytes() const {
  size_t bytes = sizeof(*this) + name_.size() + ndv_.MemoryBytes();
  if (heavy_hitters_ != nullptr) bytes += heavy_hitters_->MemoryBytes();
  if (int_heavy_hitters_ != nullptr) bytes += int_heavy_hitters_->MemoryBytes();
  if (histogram_ != nullptr) bytes += histogram_->MemoryBytes();
  if (sample_ != nullptr) bytes += sample_->MemoryBytes();
  return bytes;
}

// --- TableStatistics ---

TableStatistics::TableStatistics(std::string table_name,
                                 const rel::Schema& schema)
    : name_(std::move(table_name)) {
  columns_.reserve(schema.num_columns());
  for (const rel::Column& c : schema.columns()) {
    // Entity/event ids are distinct by construction (dense AuditLog ids);
    // sketching them would only blur an exact answer.
    columns_.emplace_back(c.name, c.type, /*is_unique_id=*/c.name == "id");
  }
}


const ColumnStatistics* TableStatistics::Column(std::string_view name) const {
  for (const ColumnStatistics& c : columns_) {
    if (c.name() == name) return &c;
  }
  return nullptr;
}

size_t TableStatistics::MemoryBytes() const {
  size_t bytes = sizeof(*this) + name_.size();
  for (const ColumnStatistics& c : columns_) bytes += c.MemoryBytes();
  return bytes;
}

// --- DegreeDistribution ---

size_t DegreeDistribution::BucketIndex(uint64_t degree) {
  return static_cast<size_t>(std::bit_width(degree));
}

void DegreeDistribution::AddNode() {
  ++nodes_;
  ++buckets_[BucketIndex(0)];
}

void DegreeDistribution::IncrementDegree(uint64_t old_degree) {
  ++total_degree_;
  max_degree_ = std::max(max_degree_, old_degree + 1);
  size_t from = BucketIndex(old_degree);
  size_t to = BucketIndex(old_degree + 1);
  if (from != to) {
    if (buckets_[from] > 0) --buckets_[from];
    ++buckets_[to];
  }
}

std::vector<DegreeDistribution::Bucket> DegreeDistribution::Buckets() const {
  std::vector<Bucket> out;
  for (size_t i = 0; i < 64; ++i) {
    if (buckets_[i] == 0) continue;
    Bucket b;
    b.lo = i == 0 ? 0 : uint64_t{1} << (i - 1);
    b.hi = i == 0 ? 0 : (uint64_t{1} << i) - 1;
    b.nodes = buckets_[i];
    out.push_back(b);
  }
  return out;
}

}  // namespace raptor::stats
