#include "storage/stats/sketches.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace raptor::stats {

uint64_t MixHash(uint64_t x) {
  // splitmix64 finalizer: full-avalanche, constant across platforms.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return MixHash(h);
}

// --- HyperLogLog ---

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  if (precision_ < 4) precision_ = 4;
  if (precision_ > 16) precision_ = 16;
  registers_.assign(size_t{1} << precision_, 0);
}

void HyperLogLog::Add(uint64_t hash) {
  ++adds_;
  const size_t index = hash >> (64 - precision_);
  // Rank of the first set bit in the remaining 64 - precision_ bits.
  uint64_t rest = hash << precision_;
  uint8_t rank = rest == 0
                     ? static_cast<uint8_t>(64 - precision_ + 1)
                     : static_cast<uint8_t>(std::countl_zero(rest) + 1);
  if (rank > registers_[index]) registers_[index] = rank;
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double sum = 0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double alpha;
  if (registers_.size() <= 16) {
    alpha = 0.673;
  } else if (registers_.size() <= 32) {
    alpha = 0.697;
  } else if (registers_.size() <= 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }
  double raw = alpha * m * m / sum;
  if (raw <= 2.5 * m && zeros > 0) {
    // Linear counting for small cardinalities.
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

// --- EquiDepthHistogram ---

EquiDepthHistogram::EquiDepthHistogram(size_t sample_capacity,
                                       size_t num_buckets)
    : sample_capacity_(sample_capacity == 0 ? 1 : sample_capacity),
      num_buckets_(num_buckets == 0 ? 1 : num_buckets),
      rng_state_(0x5bd1e995u) {
  sample_.reserve(sample_capacity_);
}

void EquiDepthHistogram::Add(int64_t value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  if (sample_.size() < sample_capacity_) {
    sample_.push_back(value);
    sorted_dirty_ = true;
    return;
  }
  // Algorithm R with a fixed-seed LCG: element i replaces a random slot
  // with probability capacity/i. Deterministic in the insertion sequence.
  // Lemire range reduction (48-bit draw x count >> 48) instead of a
  // modulo — this runs once per int64 cell on the load path and an
  // integer division there is measurable.
  rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
  uint64_t r = static_cast<uint64_t>(
      (static_cast<unsigned __int128>(rng_state_ >> 16) * count_) >> 48);
  if (r < sample_capacity_) {
    sample_[r] = value;
    sorted_dirty_ = true;
  }
}

std::optional<int64_t> EquiDepthHistogram::Min() const {
  if (count_ == 0) return std::nullopt;
  return min_;
}

std::optional<int64_t> EquiDepthHistogram::Max() const {
  if (count_ == 0) return std::nullopt;
  return max_;
}

const std::vector<int64_t>& EquiDepthHistogram::Sorted() const {
  if (sorted_dirty_ || sorted_cache_.size() != sample_.size()) {
    sorted_cache_ = sample_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    sorted_dirty_ = false;
  }
  return sorted_cache_;
}

double EquiDepthHistogram::SelectivityBetween(std::optional<int64_t> lo,
                                              std::optional<int64_t> hi) const {
  if (count_ == 0) return 0.0;
  if (lo && hi && *lo > *hi) return 0.0;
  // A range entirely outside the observed [min, max] clamps to exactly 0
  // against the exact extremes — never extrapolated from the sample (whose
  // own extremes may have been evicted) and without forcing a sample sort.
  if (lo && *lo > max_) return 0.0;
  if (hi && *hi < min_) return 0.0;
  const std::vector<int64_t>& s = Sorted();
  // Fraction of the sample inside [lo, hi]; the sample is an unbiased
  // estimate of the full distribution.
  auto begin = lo ? std::lower_bound(s.begin(), s.end(), *lo) : s.begin();
  auto end = hi ? std::upper_bound(s.begin(), s.end(), *hi) : s.end();
  if (begin >= end) return 0.0;
  return static_cast<double>(end - begin) / static_cast<double>(s.size());
}

std::vector<EquiDepthHistogram::Bucket> EquiDepthHistogram::Buckets() const {
  std::vector<Bucket> out;
  if (count_ == 0) return out;
  const std::vector<int64_t>& s = Sorted();
  const size_t buckets = std::min(num_buckets_, s.size());
  const double per = static_cast<double>(s.size()) / buckets;
  const double scale =
      static_cast<double>(count_) / static_cast<double>(s.size());
  for (size_t b = 0; b < buckets; ++b) {
    size_t begin = static_cast<size_t>(b * per);
    size_t end = b + 1 == buckets ? s.size()
                                  : static_cast<size_t>((b + 1) * per);
    if (end <= begin) end = begin + 1;
    Bucket bucket;
    bucket.lo = s[begin];
    bucket.hi = s[end - 1];
    bucket.est_count =
        static_cast<uint64_t>(static_cast<double>(end - begin) * scale + 0.5);
    out.push_back(bucket);
  }
  return out;
}

// --- StringReservoir ---

StringReservoir::StringReservoir(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), rng_state_(0x2545f491u) {
  sample_.reserve(capacity_);
}

void StringReservoir::Add(const std::string& value) {
  ++count_;
  if (sample_.size() < capacity_) {
    sample_.push_back(value);
    return;
  }
  rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
  uint64_t r = static_cast<uint64_t>(
      (static_cast<unsigned __int128>(rng_state_ >> 16) * count_) >> 48);
  if (r < capacity_) sample_[r] = value;
}

size_t StringReservoir::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const std::string& s : sample_) bytes += sizeof(s) + s.capacity();
  return bytes;
}

}  // namespace raptor::stats
