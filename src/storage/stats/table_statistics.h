// Per-table / per-column statistics, maintained incrementally on the
// serial load/sync path (RelationalDatabase::SyncWith). Each column keeps:
//
//   - an NDV estimate (HyperLogLog over the column's hashed values)
//   - the top-K heavy hitters (Space-Saving; skipped for unique-id columns
//     where every value is distinct by construction)
//   - observed min/max
//   - for int64 columns, an equi-depth histogram for range selectivity
//     (the event time columns are the paying customers)
//
// Cost model: the load path budget is tight (<5% overhead end to end, see
// bench/bench_stats_overhead.cc), so a non-sampled row costs exactly one
// counter increment plus an LCG step — no per-cell work at all. The
// per-column work (min/max + sketches) runs for every row of small tables
// but only a deterministic 1-in-16 row sample once a table grows past the
// warmup, and exact value counts are reconciled batch-wise (every row
// supplies every column, so the per-column count IS the row count).
// Fraction-valued answers (selectivities) are computed against the
// sketched stream, so uniform sampling leaves them unbiased; count-valued
// answers (heavy hitters, NDV of mostly-unique columns) are scaled back
// up by the observed sampling factor.
//
// Everything is a deterministic function of the insertion sequence; the
// cardinality estimator (engine/estimator.h) reads these to predict rows
// per TBQL pattern before execution.

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/relational/schema.h"
#include "storage/relational/value.h"
#include "storage/stats/sketches.h"

namespace raptor::stats {

/// \brief Streaming statistics for one column.
class ColumnStatistics {
 public:
  ColumnStatistics(std::string name, rel::ColumnType type,
                   bool is_unique_id);

  /// Folds one sampled value in (typed min/max plus the sketches). Only
  /// called for rows the owning table selected for the sketch tier; the
  /// total row count is reconciled batch-wise via SetTotalRows(), so
  /// non-sampled rows cost the statistics subsystem nothing at all.
  void Add(const rel::Value& value) {
    if (const int64_t* pv = value.IfInt()) {
      const int64_t v = *pv;
      if (v < int_min_) int_min_ = v;
      if (v > int_max_) int_max_ = v;
    } else if (const std::string* ps = value.IfString()) {
      const std::string& s = *ps;
      if (!has_string_range_) {
        has_string_range_ = true;
        string_min_ = string_max_ = s;
      } else if (s < string_min_) {
        string_min_ = s;
      } else if (s > string_max_) {
        string_max_ = s;
      }
    }
    if (!is_unique_id_) AddSketches(value);
  }

  /// Reconciles the exact value count. Every row supplies every column, so
  /// the per-column count is just the table's row count — maintaining it
  /// per cell on the load path would be pure overhead. The owning table
  /// calls this once per sync batch (and before any read).
  void SetTotalRows(uint64_t rows) { adds_ = rows; }

  const std::string& name() const { return name_; }
  rel::ColumnType type() const { return type_; }

  /// Estimated number of distinct values (exact add count for unique-id
  /// columns, HyperLogLog otherwise; rescaled for sampled mostly-unique
  /// columns). At least 1 once a row was added.
  double Ndv() const;

  /// Rows seen / rows sketched — the factor count-valued sketch answers
  /// are scaled by. 1 while the table is inside the sketch warmup.
  double SketchScale() const {
    if (sketch_adds_ == 0 || adds_ <= sketch_adds_) return 1.0;
    return static_cast<double>(adds_) / static_cast<double>(sketch_adds_);
  }

  /// Observed min/max (int64 and string columns; built on demand from
  /// typed fast-path fields). Exact while the table is inside the sketch
  /// warmup, the sampled-stream range beyond it. nullopt before the first
  /// sampled add.
  std::optional<rel::Value> Min() const;
  std::optional<rel::Value> Max() const;

  /// Heavy hitters, most frequent first (int columns report keys in
  /// decimal; counts scaled to full-table rows under sampling). Empty for
  /// unique-id columns and for columns whose sketch was adaptively
  /// dropped because nothing heavy ever surfaced — see AddSketches().
  std::vector<SpaceSavingTopK::HeavyHitter> HeavyHitters() const;

  /// Histogram over the column's int64 values; nullptr for string columns.
  const EquiDepthHistogram* Histogram() const { return histogram_.get(); }

  /// Value sample of string columns (LIKE-pattern estimation); nullptr for
  /// int64 and unique-id columns.
  const StringReservoir* Sample() const { return sample_.get(); }

  /// Estimated fraction of rows whose value matches `like_pattern`
  /// (SQL LIKE with % and _), from the value sample.
  double LikeSelectivity(const std::string& like_pattern) const;

  /// Estimated fraction of rows equal to `value` (0..1). Uses the exact
  /// heavy-hitter count when the value is tracked, the uniform
  /// rest-of-distribution model otherwise.
  double EqualitySelectivity(const rel::Value& value, uint64_t rows) const;

  /// Estimated fraction of rows in [lo, hi] for int64 columns (nullopt =
  /// open end); falls back to 1.0 when no histogram exists.
  double RangeSelectivity(std::optional<int64_t> lo,
                          std::optional<int64_t> hi) const;

  size_t MemoryBytes() const;

 private:
  /// The sketch tier: NDV, heavy hitters, histogram/reservoir. Out of
  /// line — it runs on sampled rows only once the table is large.
  void AddSketches(const rel::Value& value);

  std::string name_;
  rel::ColumnType type_;
  bool is_unique_id_;
  uint64_t adds_ = 0;         ///< Values seen; reconciled by SetTotalRows().
  uint64_t sketch_adds_ = 0;  ///< Values folded into the sketch tier.
  HyperLogLog ndv_;
  // Exactly one heavy-hitter sketch is live, keyed to the column type so
  // int columns never stringify per row; either may be dropped adaptively
  // when the column turns out to have no heavy values (see AddSketches()).
  std::unique_ptr<SpaceSavingTopK> heavy_hitters_;        // string columns
  std::unique_ptr<SpaceSavingTopKInt> int_heavy_hitters_;  // int64 columns
  std::unique_ptr<EquiDepthHistogram> histogram_;   // int64 columns only
  std::unique_ptr<StringReservoir> sample_;         // string columns only
  // Typed min/max storage: comparing through rel::Value's variant per cell
  // is measurable on the load path, so Add() tracks plain fields (int
  // range with open-range sentinels) and Min()/Max() materialize Values
  // on demand.
  int64_t int_min_ = INT64_MAX;
  int64_t int_max_ = INT64_MIN;
  bool has_string_range_ = false;
  std::string string_min_;
  std::string string_max_;
};

/// \brief Statistics over one table: a row count plus one ColumnStatistics
/// per schema column.
class TableStatistics {
 public:
  /// Rows below this all feed the sketch tier (small tables stay exact);
  /// past it, sketch maintenance runs on a 1-in-16 deterministic sample.
  /// Kept small: warmup rows pay full sketch cost, and the bench gate
  /// (<5% on load) leaves room for only a few thousand of them per table.
  static constexpr uint64_t kSketchWarmupRows = 1024;

  TableStatistics(std::string table_name, const rel::Schema& schema);

  /// Folds one inserted row in. `row` must match the schema. A non-sampled
  /// row costs one counter increment and an LCG step — the per-column work
  /// (min/max + sketches) runs for every warmup row and then on a
  /// fixed-seed 1-in-16 LCG row sample, so the statistics stay a
  /// deterministic function of the insertion sequence.
  void AddRow(const rel::Row& row) {
    ++rows_;
    if (rows_ > kSketchWarmupRows) {
      rng_state_ =
          rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
      if ((rng_state_ >> 60) != 0) return;  // top 4 bits clear: 1 in 16
    }
    const size_t n = std::min(row.size(), columns_.size());
    for (size_t i = 0; i < n; ++i) columns_[i].Add(row[i]);
  }

  /// Reconciles the per-column value counts with the row count. Cheap
  /// (O(columns)); the owner calls it once per sync batch rather than the
  /// columns counting per cell on the load path.
  void EndBatch() {
    for (ColumnStatistics& c : columns_) c.SetTotalRows(rows_);
  }

  const std::string& name() const { return name_; }
  uint64_t RowCount() const { return rows_; }

  size_t num_columns() const { return columns_.size(); }
  const ColumnStatistics& column(size_t i) const { return columns_[i]; }

  /// Column statistics by name; nullptr when the schema has no such column.
  const ColumnStatistics* Column(std::string_view name) const;

  size_t MemoryBytes() const;

 private:
  std::string name_;
  uint64_t rows_ = 0;
  uint64_t rng_state_ = 0x9e3779b9u;  ///< Fixed-seed LCG row sampler.
  std::vector<ColumnStatistics> columns_;
};

/// \brief Log2-bucketed degree distribution (bucket i holds nodes whose
/// degree has bit width i, i.e. bucket 0 = degree 0, bucket 1 = degree 1,
/// bucket 2 = degrees 2–3, bucket 3 = 4–7, ...). Maintained incrementally:
/// an edge append moves its endpoint from one bucket to the next when the
/// degree crosses a power of two.
class DegreeDistribution {
 public:
  /// Registers a new node with degree 0.
  void AddNode();

  /// Records one degree increment `old_degree` -> `old_degree + 1`.
  void IncrementDegree(uint64_t old_degree);

  uint64_t Nodes() const { return nodes_; }
  uint64_t TotalDegree() const { return total_degree_; }
  uint64_t MaxDegree() const { return max_degree_; }
  double AvgDegree() const {
    return nodes_ == 0 ? 0.0
                       : static_cast<double>(total_degree_) /
                             static_cast<double>(nodes_);
  }

  struct Bucket {
    uint64_t lo = 0;  ///< Inclusive smallest degree of the bucket.
    uint64_t hi = 0;  ///< Inclusive largest degree of the bucket.
    uint64_t nodes = 0;
  };

  /// Non-empty buckets in ascending degree order.
  std::vector<Bucket> Buckets() const;

 private:
  static size_t BucketIndex(uint64_t degree);

  uint64_t nodes_ = 0;
  uint64_t total_degree_ = 0;
  uint64_t max_degree_ = 0;
  uint64_t buckets_[64] = {};
};

}  // namespace raptor::stats
