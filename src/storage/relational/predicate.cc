#include "storage/relational/predicate.h"

#include "common/strings.h"

namespace raptor::rel {

bool Predicate::Matches(const Row& row) const {
  const Value& cell = row[column];
  switch (op) {
    case CompareOp::kEq:
      return cell == value;
    case CompareOp::kNe:
      return cell != value;
    case CompareOp::kLt:
      return cell < value;
    case CompareOp::kLe:
      return cell <= value;
    case CompareOp::kGt:
      return cell > value;
    case CompareOp::kGe:
      return cell >= value;
    case CompareOp::kLike:
      return cell.is_string() && value.is_string() &&
             LikeMatch(cell.AsString(), value.AsString());
    case CompareOp::kNotLike:
      return !(cell.is_string() && value.is_string() &&
               LikeMatch(cell.AsString(), value.AsString()));
  }
  return false;
}

bool MatchesAll(const Conjunction& preds, const Row& row) {
  for (const Predicate& p : preds) {
    if (!p.Matches(row)) return false;
  }
  return true;
}

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLike:
      return "LIKE";
    case CompareOp::kNotLike:
      return "NOT LIKE";
  }
  return "?";
}

std::string Predicate::ToString(const Schema& schema) const {
  std::string v = value.ToString();
  if (value.is_string()) v = "'" + v + "'";
  return StrFormat("%s %s %s", schema.column(column).name.c_str(),
                   std::string(CompareOpName(op)).c_str(), v.c_str());
}

}  // namespace raptor::rel
