// RelationalDatabase: the audit-log schema on top of the embedded engine
// (paper §II-B "Data Storage", PostgreSQL backend).
//
// System entities and events are stored in tables — one entity table per
// entity type plus one event table — and indexes are created on the key
// attributes the paper names (file name, process executable, dst IP, the
// event join keys, and event start time).

#pragma once

#include <memory>

#include "audit/log.h"
#include "storage/relational/table.h"

namespace raptor::rel {

/// \brief The relational backend: entity tables + event table over one
/// AuditLog.
class RelationalDatabase {
 public:
  RelationalDatabase();
  ~RelationalDatabase();

  /// Bulk-loads every entity and event of `log`. `log` must outlive queries
  /// only in the sense that ids refer back to it; the database copies all
  /// attribute data.
  void Load(const audit::AuditLog& log);

  /// Loads only the entities/events appended to `log` since the last
  /// Load/SyncWith — the live-ingestion path. Indexes are maintained
  /// incrementally.
  void SyncWith(const audit::AuditLog& log);

  // Table accessors. Column layouts:
  //   files(id, name)
  //   procs(id, pid, exename)
  //   nets(id, srcip, srcport, dstip, dstport, protocol)
  //   events(id, subject, object, optype, starttime, endtime, bytes)
  // `optype` stores the Operation as an integer.
  Table& files() { return *files_; }
  Table& procs() { return *procs_; }
  Table& nets() { return *nets_; }
  Table& events() { return *events_; }
  const Table& files() const { return *files_; }
  const Table& procs() const { return *procs_; }
  const Table& nets() const { return *nets_; }
  const Table& events() const { return *events_; }

  /// The entity table for `type`.
  Table& EntityTable(audit::EntityType type);
  const Table& EntityTable(audit::EntityType type) const;

  /// Total rows touched across all tables since the last ResetStats().
  uint64_t TotalRowsTouched() const;
  void ResetStats();

  /// Approximate bytes held by all tables (rows + indexes).
  size_t ApproxBytes() const;

 private:
  std::unique_ptr<Table> files_;
  std::unique_ptr<Table> procs_;
  std::unique_ptr<Table> nets_;
  std::unique_ptr<Table> events_;
  size_t loaded_entities_ = 0;
  size_t loaded_events_ = 0;
  size_t charged_bytes_ = 0;  ///< Bytes reported to the ResourceTracker.
};

}  // namespace raptor::rel
