// RelationalDatabase: the audit-log schema on top of the embedded engine
// (paper §II-B "Data Storage", PostgreSQL backend).
//
// System entities and events are stored in tables — one entity table per
// entity type plus one event table — and indexes are created on the key
// attributes the paper names (file name, process executable, dst IP, the
// event join keys, and event start time).

#pragma once

#include <memory>

#include "audit/log.h"
#include "storage/relational/segment.h"
#include "storage/relational/table.h"
#include "storage/stats/table_statistics.h"

namespace raptor::rel {

/// \brief The relational backend: entity tables + event table over one
/// AuditLog.
class RelationalDatabase {
 public:
  RelationalDatabase();
  ~RelationalDatabase();

  /// Bulk-loads every entity and event of `log`. `log` must outlive queries
  /// only in the sense that ids refer back to it; the database copies all
  /// attribute data.
  void Load(const audit::AuditLog& log);

  /// Loads only the entities/events appended to `log` since the last
  /// Load/SyncWith — the live-ingestion path. Indexes are maintained
  /// incrementally.
  void SyncWith(const audit::AuditLog& log);

  // Table accessors. Column layouts:
  //   files(id, name)
  //   procs(id, pid, exename)
  //   nets(id, srcip, srcport, dstip, dstport, protocol)
  //   events(id, subject, object, optype, starttime, endtime, bytes)
  // `optype` stores the Operation as an integer.
  Table& files() { return *files_; }
  Table& procs() { return *procs_; }
  Table& nets() { return *nets_; }
  Table& events() { return *events_; }
  const Table& files() const { return *files_; }
  const Table& procs() const { return *procs_; }
  const Table& nets() const { return *nets_; }
  const Table& events() const { return *events_; }

  /// The entity table for `type`.
  Table& EntityTable(audit::EntityType type);
  const Table& EntityTable(audit::EntityType type) const;

  /// The columnar event layout, maintained in lockstep with events() on the
  /// serial load/sync path (same rows, same RowId order). The engine's
  /// columnar access paths read this; the row store remains the reference
  /// layout (and still backs generic Select calls).
  const EventSegmentStore& event_segments() const { return *event_segments_; }

  /// Monotonic data version: bumped by every SyncWith() that appended
  /// anything. Cached query plans are tagged with the generation they were
  /// built against and discarded on mismatch.
  uint64_t generation() const { return generation_; }

  /// Total rows touched across all tables since the last ResetStats().
  uint64_t TotalRowsTouched() const;
  void ResetStats();

  /// Approximate bytes held by all tables (rows + indexes).
  size_t ApproxBytes() const;

  // --- Data statistics (maintained incrementally at load/sync). ---

  /// Disables/enables statistics maintenance for subsequent syncs (the
  /// stats-overhead bench's control arm). Already-collected statistics are
  /// kept; they just stop advancing.
  void SetStatisticsEnabled(bool enabled) { stats_enabled_ = enabled; }
  bool statistics_enabled() const { return stats_enabled_; }

  /// Per-table statistics, same layout as the table accessors.
  const stats::TableStatistics& files_statistics() const {
    return *files_stats_;
  }
  const stats::TableStatistics& procs_statistics() const {
    return *procs_stats_;
  }
  const stats::TableStatistics& nets_statistics() const {
    return *nets_stats_;
  }
  const stats::TableStatistics& events_statistics() const {
    return *events_stats_;
  }
  /// The statistics of the entity table for `type`.
  const stats::TableStatistics& EntityStatistics(audit::EntityType type) const;

  /// Every table's statistics (files, procs, nets, events — stable order).
  std::vector<const stats::TableStatistics*> AllStatistics() const;

  /// Approximate bytes held by the statistics sketches (charged to
  /// obs::Component::kStats).
  size_t StatisticsBytes() const;

 private:
  std::unique_ptr<Table> files_;
  std::unique_ptr<Table> procs_;
  std::unique_ptr<Table> nets_;
  std::unique_ptr<Table> events_;
  std::unique_ptr<EventSegmentStore> event_segments_;
  uint64_t generation_ = 0;
  std::unique_ptr<stats::TableStatistics> files_stats_;
  std::unique_ptr<stats::TableStatistics> procs_stats_;
  std::unique_ptr<stats::TableStatistics> nets_stats_;
  std::unique_ptr<stats::TableStatistics> events_stats_;
  bool stats_enabled_ = true;
  size_t loaded_entities_ = 0;
  size_t loaded_events_ = 0;
  size_t charged_bytes_ = 0;  ///< Bytes reported to the ResourceTracker.
  size_t stats_charged_bytes_ = 0;  ///< Sketch bytes reported to kStats.
};

}  // namespace raptor::rel
