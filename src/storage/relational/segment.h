// Columnar event storage (ROADMAP item 2): dictionary-encoded, fixed-size,
// time-ordered segments with per-segment zone maps (min/max start time,
// min/max entity id per side), entity-id bloom filters, per-operation row
// bitmaps, and per-segment entity posting lists — the orrp
// `inverted_event_index_db` / `count_index_db` pattern adapted to an
// in-memory layout.
//
// The store answers the two probe shapes the TBQL engine issues against the
// event table:
//
//   ProbeEntity   "events whose subject (or object) is entity X" — cases A/B
//                 of the engine's event-member execution. Zone maps and
//                 bloom filters skip segments before any row data is read.
//   SharedOpScan  "events with operation in {...} inside a time window" —
//                 the unconstrained case C. N probes (from one wave or from
//                 N concurrent hunts) share a single pass over the union of
//                 their zone-map-surviving segments; each probe's output is
//                 emitted in (declared-operation order, ascending row)
//                 order, byte-identical to N independent scans.
//
// Both probes emit rows in exactly the order the row-store path would
// (ascending RowId per probe / per operation), which is what lets the
// engine switch storage layouts without perturbing its byte-identical
// determinism contract.
//
// Everything here is a deterministic function of the append sequence, and
// the store is immutable during queries (appends happen only on the serial
// load/sync path), so probe results and probe *statistics* are identical at
// any query thread count.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/relational/column.h"

namespace raptor::rel {

/// \brief One decoded event row, mirroring the event-table columns the
/// engine reads (`bytes` is never probed and is not stored columnar).
struct EventRecord {
  int64_t id = 0;
  int64_t subject = 0;
  int64_t object = 0;
  int64_t op = 0;
  int64_t start_time = 0;
  int64_t end_time = 0;
};

/// \brief Per-probe accounting, the columnar analogue of TableStats.
struct SegmentProbeStats {
  uint64_t segments_considered = 0;  ///< Segments examined by metadata.
  uint64_t segments_pruned_zone = 0;    ///< Skipped via zone maps.
  uint64_t segments_pruned_bloom = 0;   ///< Skipped via bloom filters.
  uint64_t segments_scanned = 0;     ///< Segments whose row data was read.
  uint64_t bloom_false_positives = 0;  ///< Bloom said maybe; segment had 0 rows.
  uint64_t rows_scanned = 0;         ///< Rows decoded and filtered.
  uint64_t probes = 0;               ///< Entity/operation lookups issued.

  uint64_t segments_pruned() const {
    return segments_pruned_zone + segments_pruned_bloom;
  }
  void Add(const SegmentProbeStats& o) {
    segments_considered += o.segments_considered;
    segments_pruned_zone += o.segments_pruned_zone;
    segments_pruned_bloom += o.segments_pruned_bloom;
    segments_scanned += o.segments_scanned;
    bloom_false_positives += o.bloom_false_positives;
    rows_scanned += o.rows_scanned;
    probes += o.probes;
  }
};

/// \brief Dictionary-encoded columnar event store in fixed-size segments.
class EventSegmentStore {
 public:
  static constexpr size_t kDefaultSegmentRows = 4096;
  /// Pricing width of one decoded row (id + coded entities/op + times) for
  /// bytes-touched accounting, mirroring Table::AvgRowBytes()'s role.
  static constexpr size_t kApproxRowBytes = 33;

  enum class Side { kSubject, kObject };

  explicit EventSegmentStore(size_t segment_rows = kDefaultSegmentRows);

  /// Appends one event (serial load/sync path only; never concurrent with
  /// probes).
  void Append(int64_t id, int64_t subject, int64_t object, int64_t op,
              int64_t start_time, int64_t end_time);

  size_t num_rows() const { return start_.size(); }
  size_t num_segments() const { return segments_.size(); }
  size_t segment_rows() const { return segment_rows_; }

  /// Approximate heap bytes (columns + dictionaries + per-segment indexes),
  /// charged to obs::Component::kRelational by the owning database.
  size_t ApproxBytes() const;

  /// Decodes row `row` (0 <= row < num_rows()).
  EventRecord Record(size_t row) const;

  /// Segment ids whose start-time zone map intersects [lo, hi] (either
  /// bound optional), ascending. This is the access-path decision a cached
  /// plan stores.
  std::vector<uint32_t> PruneByWindow(std::optional<int64_t> lo,
                                      std::optional<int64_t> hi) const;

  /// Events whose `side` column equals `entity_id`, filtered by the
  /// optional window, operation set (empty = any), and an optional
  /// filter on the opposite entity column. Appends to `out` in ascending
  /// row order — the order the row-store index probe emits.
  void ProbeEntity(Side side, int64_t entity_id,
                   const std::unordered_set<int64_t>& op_set,
                   std::optional<int64_t> window_start,
                   std::optional<int64_t> window_end,
                   const std::unordered_set<uint64_t>* other_filter,
                   std::vector<EventRecord>* out,
                   SegmentProbeStats* stats) const;

  /// One operation-scan request: the unconstrained pattern shape.
  struct OpScanProbe {
    std::vector<int64_t> ops;  ///< Declared order; preserved in the output.
    std::optional<int64_t> window_start;
    std::optional<int64_t> window_end;
    /// Optional precomputed zone-map prune result (a cached plan's segment
    /// list). When null the store computes PruneByWindow itself.
    const std::vector<uint32_t>* segments = nullptr;
  };

  /// Runs every probe in one pass over the union of their surviving
  /// segments. `out` and `stats` are resized to `probes.size()`; probe i's
  /// rows land in (*out)[i] in (operation order, ascending row) order —
  /// byte-identical to running the probes one at a time. `should_stop` (may
  /// be null) is polled between segments; returns false if it tripped, in
  /// which case outputs hold the valid prefix.
  bool SharedOpScan(const std::vector<OpScanProbe>& probes,
                    const std::function<bool()>* should_stop,
                    std::vector<std::vector<EventRecord>>* out,
                    std::vector<SegmentProbeStats>* stats) const;

 private:
  struct Segment {
    size_t begin = 0;  ///< First global row of the segment.
    size_t count = 0;
    int64_t min_start = 0, max_start = 0;
    int64_t min_subject = 0, max_subject = 0;
    int64_t min_object = 0, max_object = 0;
    BloomFilter subject_bloom;
    BloomFilter object_bloom;
    /// Operation code -> bitmap of in-segment row offsets.
    std::unordered_map<uint32_t, Bitmap> op_rows;
    /// Entity code -> ascending in-segment row offsets (posting lists).
    std::unordered_map<uint32_t, std::vector<uint16_t>> subject_rows;
    std::unordered_map<uint32_t, std::vector<uint16_t>> object_rows;
  };

  /// Window-vs-zone-map overlap test for one segment.
  bool WindowOverlaps(const Segment& seg, std::optional<int64_t> lo,
                      std::optional<int64_t> hi) const {
    if (lo && seg.max_start < *lo) return false;
    if (hi && seg.min_start > *hi) return false;
    return true;
  }

  size_t segment_rows_;
  // Column vectors (parallel, one entry per event). Entity and operation
  // columns are dictionary codes; times and ids are raw.
  std::vector<int64_t> id_;
  std::vector<uint32_t> subject_code_;
  std::vector<uint32_t> object_code_;
  std::vector<uint8_t> op_code_;  ///< Operation fits one byte (<=256 kinds).
  std::vector<int64_t> start_;
  std::vector<int64_t> end_;
  Dictionary subject_dict_;
  Dictionary object_dict_;
  Dictionary op_dict_;
  std::vector<Segment> segments_;
};

}  // namespace raptor::rel
