// Typed values for the embedded relational engine.

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/strings.h"

namespace raptor::rel {

/// Column types supported by the engine. The audit schema only needs
/// integers and strings; doubles are kept for derived/statistics columns.
enum class ColumnType : uint8_t { kInt64, kDouble, kString };

/// \brief A dynamically typed cell value.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  Value(int64_t v) : v_(v) {}              // NOLINT: implicit by design
  Value(double v) : v_(v) {}               // NOLINT
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT

  ColumnType type() const {
    switch (v_.index()) {
      case 0:
        return ColumnType::kInt64;
      case 1:
        return ColumnType::kDouble;
      default:
        return ColumnType::kString;
    }
  }

  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    return is_int() ? static_cast<double>(AsInt()) : std::get<double>(v_);
  }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Checked accessors without std::get's throw path — one variant-index
  /// test, nullptr on type mismatch. The statistics maintenance code runs
  /// per cell on the load path and measurably prefers these.
  const int64_t* IfInt() const { return std::get_if<int64_t>(&v_); }
  const std::string* IfString() const { return std::get_if<std::string>(&v_); }

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Three-way comparison. Numeric values compare numerically across
  /// int/double; strings compare lexicographically; mixed string/numeric
  /// compares by type index (stable total order for index keys).
  int Compare(const Value& other) const {
    bool a_num = !is_string();
    bool b_num = !other.is_string();
    if (a_num && b_num) {
      double a = AsDouble(), b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    if (!a_num && !b_num) {
      return AsString().compare(other.AsString());
    }
    return a_num ? -1 : 1;
  }

  std::string ToString() const {
    if (is_int()) return std::to_string(AsInt());
    if (is_double()) return StrFormat("%g", std::get<double>(v_));
    return AsString();
  }

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace raptor::rel
