// Table schemas for the embedded relational engine.

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/relational/value.h"

namespace raptor::rel {

/// Column index within a schema.
using ColumnId = size_t;

constexpr ColumnId kInvalidColumn = ~size_t{0};

/// \brief A named, typed column.
struct Column {
  std::string name;
  ColumnType type;
};

/// \brief Ordered list of columns with name lookup.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Column> columns) {
    for (const auto& c : columns) AddColumn(c);
  }

  void AddColumn(Column column) {
    by_name_.emplace(column.name, columns_.size());
    columns_.push_back(std::move(column));
  }

  /// Returns the column index or kInvalidColumn when absent.
  ColumnId Find(const std::string& name) const {
    auto it = by_name_.find(name);
    return it == by_name_.end() ? kInvalidColumn : it->second;
  }

  const Column& column(ColumnId id) const { return columns_[id]; }
  size_t num_columns() const { return columns_.size(); }
  const std::vector<Column>& columns() const { return columns_; }

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, ColumnId> by_name_;
};

/// \brief A row: one Value per schema column.
using Row = std::vector<Value>;

/// Position of a row within its table.
using RowId = size_t;

}  // namespace raptor::rel
