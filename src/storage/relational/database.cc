#include "storage/relational/database.h"

#include "obs/log.h"
#include "obs/resource.h"

namespace raptor::rel {

RelationalDatabase::RelationalDatabase() {
  files_ = std::make_unique<Table>(
      "files", Schema{{"id", ColumnType::kInt64},
                      {"name", ColumnType::kString}});
  procs_ = std::make_unique<Table>(
      "procs", Schema{{"id", ColumnType::kInt64},
                      {"pid", ColumnType::kInt64},
                      {"exename", ColumnType::kString}});
  nets_ = std::make_unique<Table>(
      "nets", Schema{{"id", ColumnType::kInt64},
                     {"srcip", ColumnType::kString},
                     {"srcport", ColumnType::kInt64},
                     {"dstip", ColumnType::kString},
                     {"dstport", ColumnType::kInt64},
                     {"protocol", ColumnType::kString}});
  events_ = std::make_unique<Table>(
      "events", Schema{{"id", ColumnType::kInt64},
                       {"subject", ColumnType::kInt64},
                       {"object", ColumnType::kInt64},
                       {"optype", ColumnType::kInt64},
                       {"starttime", ColumnType::kInt64},
                       {"endtime", ColumnType::kInt64},
                       {"bytes", ColumnType::kInt64}});

  files_stats_ =
      std::make_unique<stats::TableStatistics>("files", files_->schema());
  procs_stats_ =
      std::make_unique<stats::TableStatistics>("procs", procs_->schema());
  nets_stats_ =
      std::make_unique<stats::TableStatistics>("nets", nets_->schema());
  events_stats_ =
      std::make_unique<stats::TableStatistics>("events", events_->schema());
  event_segments_ = std::make_unique<EventSegmentStore>();

  // Indexes on key attributes (paper §II-B).
  (void)files_->CreateIndex("id");
  (void)files_->CreateIndex("name");
  (void)procs_->CreateIndex("id");
  (void)procs_->CreateIndex("exename");
  (void)nets_->CreateIndex("id");
  (void)nets_->CreateIndex("dstip");
  (void)events_->CreateIndex("subject");
  (void)events_->CreateIndex("object");
  (void)events_->CreateIndex("optype");
  (void)events_->CreateIndex("starttime");
}

void RelationalDatabase::Load(const audit::AuditLog& log) {
  loaded_entities_ = 0;
  loaded_events_ = 0;
  SyncWith(log);
}

void RelationalDatabase::SyncWith(const audit::AuditLog& log) {
  const size_t prev_entities = loaded_entities_;
  const size_t prev_events = loaded_events_;
  // Statistics ride the same serial insert path: each row is folded into
  // the table's sketches before the table takes ownership of it, so the
  // collected statistics are a deterministic function of the log sequence.
  auto insert = [this](Table* table, stats::TableStatistics* stats, Row row) {
    if (stats_enabled_) stats->AddRow(row);
    table->Insert(std::move(row));
  };
  for (size_t i = loaded_entities_; i < log.entity_count(); ++i) {
    const auto& e = log.entity(i);
    switch (e.type) {
      case audit::EntityType::kFile:
        insert(files_.get(), files_stats_.get(),
               {static_cast<int64_t>(e.id), e.path});
        break;
      case audit::EntityType::kProcess:
        insert(procs_.get(), procs_stats_.get(),
               {static_cast<int64_t>(e.id), static_cast<int64_t>(e.pid),
                e.exename});
        break;
      case audit::EntityType::kNetwork:
        insert(nets_.get(), nets_stats_.get(),
               {static_cast<int64_t>(e.id), e.src_ip,
                static_cast<int64_t>(e.src_port), e.dst_ip,
                static_cast<int64_t>(e.dst_port), e.protocol});
        break;
    }
  }
  loaded_entities_ = log.entity_count();
  for (size_t i = loaded_events_; i < log.event_count(); ++i) {
    const auto& ev = log.event(i);
    insert(events_.get(), events_stats_.get(),
           {static_cast<int64_t>(ev.id), static_cast<int64_t>(ev.subject),
            static_cast<int64_t>(ev.object), static_cast<int64_t>(ev.op),
            ev.start_time, ev.end_time, static_cast<int64_t>(ev.bytes)});
    // The columnar layout rides the same serial path, so its RowIds match
    // the row store's and its contents are a deterministic function of the
    // log sequence.
    event_segments_->Append(
        static_cast<int64_t>(ev.id), static_cast<int64_t>(ev.subject),
        static_cast<int64_t>(ev.object), static_cast<int64_t>(ev.op),
        ev.start_time, ev.end_time);
  }
  loaded_events_ = log.event_count();
  if (loaded_entities_ > prev_entities || loaded_events_ > prev_events) {
    ++generation_;  // Invalidates cached query plans.
  }
  if (stats_enabled_) {
    // Reconcile exact per-column value counts once per batch instead of
    // per cell on the insert path.
    files_stats_->EndBatch();
    procs_stats_->EndBatch();
    nets_stats_->EndBatch();
    events_stats_->EndBatch();
  }
  // Re-charge the delta since the last sync so the raptor_mem_* gauges
  // follow table growth without per-row accounting overhead.
  size_t now = ApproxBytes();
  obs::ResourceTracker::Default().Charge(
      obs::Component::kRelational,
      static_cast<int64_t>(now) - static_cast<int64_t>(charged_bytes_));
  charged_bytes_ = now;
  size_t stats_now = StatisticsBytes();
  obs::ResourceTracker::Default().Charge(
      obs::Component::kStats,
      static_cast<int64_t>(stats_now) -
          static_cast<int64_t>(stats_charged_bytes_));
  stats_charged_bytes_ = stats_now;
  obs::Logger::Default()
      .Log(obs::LogLevel::kInfo, "storage", "relational store synced")
      .Field("entities", static_cast<uint64_t>(loaded_entities_))
      .Field("events", static_cast<uint64_t>(loaded_events_));
}

Table& RelationalDatabase::EntityTable(audit::EntityType type) {
  switch (type) {
    case audit::EntityType::kFile:
      return *files_;
    case audit::EntityType::kProcess:
      return *procs_;
    case audit::EntityType::kNetwork:
      return *nets_;
  }
  return *files_;
}

const Table& RelationalDatabase::EntityTable(audit::EntityType type) const {
  return const_cast<RelationalDatabase*>(this)->EntityTable(type);
}

uint64_t RelationalDatabase::TotalRowsTouched() const {
  uint64_t total = 0;
  for (const Table* t : {files_.get(), procs_.get(), nets_.get(),
                         events_.get()}) {
    total += t->stats().rows_scanned + t->stats().rows_from_index;
  }
  return total;
}

RelationalDatabase::~RelationalDatabase() {
  obs::ResourceTracker::Default().Charge(
      obs::Component::kRelational, -static_cast<int64_t>(charged_bytes_));
  obs::ResourceTracker::Default().Charge(
      obs::Component::kStats, -static_cast<int64_t>(stats_charged_bytes_));
}

const stats::TableStatistics& RelationalDatabase::EntityStatistics(
    audit::EntityType type) const {
  switch (type) {
    case audit::EntityType::kFile:
      return *files_stats_;
    case audit::EntityType::kProcess:
      return *procs_stats_;
    case audit::EntityType::kNetwork:
      return *nets_stats_;
  }
  return *files_stats_;
}

std::vector<const stats::TableStatistics*> RelationalDatabase::AllStatistics()
    const {
  return {files_stats_.get(), procs_stats_.get(), nets_stats_.get(),
          events_stats_.get()};
}

size_t RelationalDatabase::StatisticsBytes() const {
  size_t total = 0;
  for (const stats::TableStatistics* s : AllStatistics()) {
    total += s->MemoryBytes();
  }
  return total;
}

size_t RelationalDatabase::ApproxBytes() const {
  size_t total = 0;
  for (const Table* t :
       {files_.get(), procs_.get(), nets_.get(), events_.get()}) {
    total += t->ApproxBytes();
  }
  total += event_segments_->ApproxBytes();
  return total;
}

void RelationalDatabase::ResetStats() {
  files_->ResetStats();
  procs_->ResetStats();
  nets_->ResetStats();
  events_->ResetStats();
}

}  // namespace raptor::rel
