#include "storage/relational/database.h"

#include "obs/log.h"
#include "obs/resource.h"

namespace raptor::rel {

RelationalDatabase::RelationalDatabase() {
  files_ = std::make_unique<Table>(
      "files", Schema{{"id", ColumnType::kInt64},
                      {"name", ColumnType::kString}});
  procs_ = std::make_unique<Table>(
      "procs", Schema{{"id", ColumnType::kInt64},
                      {"pid", ColumnType::kInt64},
                      {"exename", ColumnType::kString}});
  nets_ = std::make_unique<Table>(
      "nets", Schema{{"id", ColumnType::kInt64},
                     {"srcip", ColumnType::kString},
                     {"srcport", ColumnType::kInt64},
                     {"dstip", ColumnType::kString},
                     {"dstport", ColumnType::kInt64},
                     {"protocol", ColumnType::kString}});
  events_ = std::make_unique<Table>(
      "events", Schema{{"id", ColumnType::kInt64},
                       {"subject", ColumnType::kInt64},
                       {"object", ColumnType::kInt64},
                       {"optype", ColumnType::kInt64},
                       {"starttime", ColumnType::kInt64},
                       {"endtime", ColumnType::kInt64},
                       {"bytes", ColumnType::kInt64}});

  // Indexes on key attributes (paper §II-B).
  (void)files_->CreateIndex("id");
  (void)files_->CreateIndex("name");
  (void)procs_->CreateIndex("id");
  (void)procs_->CreateIndex("exename");
  (void)nets_->CreateIndex("id");
  (void)nets_->CreateIndex("dstip");
  (void)events_->CreateIndex("subject");
  (void)events_->CreateIndex("object");
  (void)events_->CreateIndex("optype");
  (void)events_->CreateIndex("starttime");
}

void RelationalDatabase::Load(const audit::AuditLog& log) {
  loaded_entities_ = 0;
  loaded_events_ = 0;
  SyncWith(log);
}

void RelationalDatabase::SyncWith(const audit::AuditLog& log) {
  for (size_t i = loaded_entities_; i < log.entity_count(); ++i) {
    const auto& e = log.entity(i);
    switch (e.type) {
      case audit::EntityType::kFile:
        files_->Insert({static_cast<int64_t>(e.id), e.path});
        break;
      case audit::EntityType::kProcess:
        procs_->Insert({static_cast<int64_t>(e.id),
                        static_cast<int64_t>(e.pid), e.exename});
        break;
      case audit::EntityType::kNetwork:
        nets_->Insert({static_cast<int64_t>(e.id), e.src_ip,
                       static_cast<int64_t>(e.src_port), e.dst_ip,
                       static_cast<int64_t>(e.dst_port), e.protocol});
        break;
    }
  }
  loaded_entities_ = log.entity_count();
  for (size_t i = loaded_events_; i < log.event_count(); ++i) {
    const auto& ev = log.event(i);
    events_->Insert({static_cast<int64_t>(ev.id),
                     static_cast<int64_t>(ev.subject),
                     static_cast<int64_t>(ev.object),
                     static_cast<int64_t>(ev.op), ev.start_time, ev.end_time,
                     static_cast<int64_t>(ev.bytes)});
  }
  loaded_events_ = log.event_count();
  // Re-charge the delta since the last sync so the raptor_mem_* gauges
  // follow table growth without per-row accounting overhead.
  size_t now = ApproxBytes();
  obs::ResourceTracker::Default().Charge(
      obs::Component::kRelational,
      static_cast<int64_t>(now) - static_cast<int64_t>(charged_bytes_));
  charged_bytes_ = now;
  obs::Logger::Default()
      .Log(obs::LogLevel::kInfo, "storage", "relational store synced")
      .Field("entities", static_cast<uint64_t>(loaded_entities_))
      .Field("events", static_cast<uint64_t>(loaded_events_));
}

Table& RelationalDatabase::EntityTable(audit::EntityType type) {
  switch (type) {
    case audit::EntityType::kFile:
      return *files_;
    case audit::EntityType::kProcess:
      return *procs_;
    case audit::EntityType::kNetwork:
      return *nets_;
  }
  return *files_;
}

const Table& RelationalDatabase::EntityTable(audit::EntityType type) const {
  return const_cast<RelationalDatabase*>(this)->EntityTable(type);
}

uint64_t RelationalDatabase::TotalRowsTouched() const {
  uint64_t total = 0;
  for (const Table* t : {files_.get(), procs_.get(), nets_.get(),
                         events_.get()}) {
    total += t->stats().rows_scanned + t->stats().rows_from_index;
  }
  return total;
}

RelationalDatabase::~RelationalDatabase() {
  obs::ResourceTracker::Default().Charge(
      obs::Component::kRelational, -static_cast<int64_t>(charged_bytes_));
}

size_t RelationalDatabase::ApproxBytes() const {
  size_t total = 0;
  for (const Table* t :
       {files_.get(), procs_.get(), nets_.get(), events_.get()}) {
    total += t->ApproxBytes();
  }
  return total;
}

void RelationalDatabase::ResetStats() {
  files_->ResetStats();
  procs_->ResetStats();
  nets_->ResetStats();
  events_->ResetStats();
}

}  // namespace raptor::rel
