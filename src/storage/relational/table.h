// Table: in-memory row store with ordered secondary indexes.
//
// This is the PostgreSQL stand-in (see DESIGN.md): the paper stores system
// entities and events in tables, creates indexes on key attributes, and
// compiles TBQL event patterns into entity-join-event SQL. Table provides
// the storage and access-path layer those compiled queries run on: inserts,
// full scans, and index-backed selection with a simple access-path picker.

#pragma once

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/relational/predicate.h"
#include "storage/relational/schema.h"

namespace raptor {
class ThreadPool;
}

namespace raptor::rel {

/// \brief Execution counters, used by the benches to show how scheduling
/// changes the work a query does.
struct TableStats {
  uint64_t rows_scanned = 0;   ///< Rows touched by full scans.
  uint64_t index_probes = 0;   ///< Index lookups performed.
  uint64_t rows_from_index = 0;  ///< Rows produced by index access paths.
  uint64_t full_scans = 0;     ///< Select calls that fell back to a scan.
  uint64_t bytes_touched = 0;  ///< Approximate bytes of row data examined.
};

/// \brief Per-call execution knobs for Select. Full scans are partitioned
/// across the pool when one is provided; index probes stay serial (they are
/// already sub-linear). Concurrent Select calls on one table are safe: the
/// table itself is read-only during Select and the shared stats_ counters
/// are updated atomically.
struct ScanOptions {
  /// Worker pool for partitioned full scans; nullptr = serial.
  ThreadPool* pool = nullptr;
  /// Parallelism cap for this call (0 = pool size + 1, 1 = serial).
  size_t num_threads = 1;
  /// Minimum rows per scan partition; below 2x this a scan stays serial.
  size_t grain = 4096;
  /// When set, this call's counter deltas are also accumulated here (plain
  /// writes — the struct must be private to the caller). The engine uses
  /// this to attribute rows deterministically to the pattern that ran the
  /// scan, independent of what other threads do concurrently.
  TableStats* call_stats = nullptr;
  /// Estimator-predicted result rows for this call (0 = unknown). A full
  /// scan reserves its hit vector to min(expected_rows, table rows) up
  /// front instead of growing from empty; purely a performance hint — the
  /// result is identical either way.
  size_t expected_rows = 0;
};

/// \brief An in-memory table with optional ordered secondary indexes.
class Table {
 public:
  explicit Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const Row& row(RowId id) const { return rows_[id]; }

  /// Appends `row` (must match the schema arity) and maintains indexes.
  RowId Insert(Row row);

  /// Builds an ordered index over `column`. Idempotent.
  Status CreateIndex(const std::string& column);

  bool HasIndex(ColumnId column) const {
    return indexes_.count(column) > 0;
  }

  /// Returns the row ids satisfying all predicates, in insertion order.
  /// Picks the cheapest access path: an equality/range/LIKE-prefix probe on
  /// an indexed column when one exists, otherwise a full scan; remaining
  /// predicates are applied as residual filters.
  std::vector<RowId> Select(const Conjunction& predicates) const;

  /// Same result as Select(predicates) — byte-identical row ids in the same
  /// order at any thread count — with per-call parallelism and stats
  /// attribution (see ScanOptions).
  std::vector<RowId> Select(const Conjunction& predicates,
                            const ScanOptions& options) const;

  /// Number of index entries equal to `value` (selectivity estimate used by
  /// access-path choice and the engine's scheduler).
  size_t EstimateEqualityMatches(ColumnId column, const Value& value) const;

  const TableStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TableStats{}; }

  /// Approximate bytes of row data (values + per-row overhead), maintained
  /// incrementally on Insert so reading it is O(1).
  size_t ApproxDataBytes() const { return data_bytes_; }
  /// Approximate bytes of index entries across all secondary indexes.
  size_t ApproxIndexBytes() const { return index_bytes_; }
  size_t ApproxBytes() const { return data_bytes_ + index_bytes_; }

  /// Average bytes per row (>= 1 once the table has rows) — the unit used
  /// to convert row counts into bytes-touched estimates.
  size_t AvgRowBytes() const {
    return rows_.empty() ? 0
                         : std::max<size_t>(1, data_bytes_ / rows_.size());
  }

 private:
  using Index = std::multimap<Value, RowId>;

  /// Access path candidates considered by Select.
  struct AccessPath {
    enum class Kind { kFullScan, kIndexEq, kIndexRange } kind = Kind::kFullScan;
    ColumnId column = kInvalidColumn;
    // Range bounds for kIndexRange (inclusive lower, exclusive upper when
    // upper_open, both optional).
    bool has_lower = false, has_upper = false, lower_strict = false,
         upper_strict = false;
    Value lower, upper;
    Value eq_value;
    size_t estimated_rows = 0;
  };

  AccessPath ChooseAccessPath(const Conjunction& predicates) const;

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::unordered_map<ColumnId, Index> indexes_;
  mutable TableStats stats_;
  size_t data_bytes_ = 0;
  size_t index_bytes_ = 0;
};

}  // namespace raptor::rel
