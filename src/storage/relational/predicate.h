// Predicates: the filter language the relational engine evaluates.

#pragma once

#include <string>
#include <vector>

#include "storage/relational/schema.h"

namespace raptor::rel {

/// Comparison operators; kLike implements SQL LIKE with '%' wildcards.
enum class CompareOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLike,
  kNotLike,
};

/// \brief One column-vs-constant comparison.
struct Predicate {
  ColumnId column = kInvalidColumn;
  CompareOp op = CompareOp::kEq;
  Value value;

  /// Evaluates this predicate against `row`.
  bool Matches(const Row& row) const;

  std::string ToString(const Schema& schema) const;
};

/// \brief Conjunction of predicates (all must hold).
using Conjunction = std::vector<Predicate>;

/// Evaluates a conjunction against `row`.
bool MatchesAll(const Conjunction& preds, const Row& row);

std::string_view CompareOpName(CompareOp op);

}  // namespace raptor::rel
