// Building blocks for the columnar event layout: a dense bitmap, a
// dictionary coder for int64 columns, and a blocked bloom filter for
// per-segment entity membership tests. All three are deterministic —
// identical input sequences produce identical structures — which the
// engine's byte-identical-results contract relies on.

#pragma once

#include <cstdint>
#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

namespace raptor::rel {

/// \brief A fixed-capacity bitmap over row offsets within one segment.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t bits) { Resize(bits); }

  void Resize(size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  void Set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  size_t bits() const { return bits_; }

  /// Number of set bits.
  size_t Count() const;

  /// Calls `fn(offset)` for every set bit in ascending offset order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        fn(w * 64 + bit);
        word &= word - 1;
      }
    }
  }

  size_t ApproxBytes() const {
    return sizeof(*this) + words_.capacity() * sizeof(uint64_t);
  }

 private:
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

/// \brief Dictionary coder: maps int64 column values to dense uint32 codes
/// in first-appearance order. Codes are stable once assigned.
class Dictionary {
 public:
  /// Returns the code for `value`, assigning the next free code when the
  /// value is new.
  uint32_t Intern(int64_t value);

  /// Returns the code for `value` if it has been interned.
  std::optional<uint32_t> Find(int64_t value) const;

  int64_t value(uint32_t code) const { return values_[code]; }
  size_t size() const { return values_.size(); }

  size_t ApproxBytes() const;

 private:
  std::unordered_map<int64_t, uint32_t> code_of_;
  std::vector<int64_t> values_;
};

/// \brief A small bloom filter over uint64 keys (two hash probes derived
/// from one 64-bit mix). Sized at construction; power-of-two bit count.
class BloomFilter {
 public:
  BloomFilter() = default;
  /// `expected_keys` drives sizing at ~10 bits per key, rounded up to a
  /// power of two (minimum 64 bits).
  explicit BloomFilter(size_t expected_keys);

  void Add(uint64_t key);
  bool MayContain(uint64_t key) const;

  size_t ApproxBytes() const {
    return sizeof(*this) + words_.capacity() * sizeof(uint64_t);
  }

 private:
  uint64_t mask_ = 0;  ///< bit-index mask (bit count - 1).
  std::vector<uint64_t> words_;
};

}  // namespace raptor::rel
