#include "storage/relational/table.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace raptor::rel {

namespace {

// Fixed overheads of the byte-accounting model: a vector header per row and
// a tree node per index entry. Approximate by design — the point is that
// the gauges move proportionally with the data, not malloc-exact numbers.
constexpr size_t kRowOverheadBytes = sizeof(Row);
constexpr size_t kIndexEntryOverheadBytes = 4 * sizeof(void*);

size_t ValueBytes(const Value& value) {
  size_t bytes = sizeof(Value);
  if (value.is_string()) bytes += value.AsString().size();
  return bytes;
}

size_t RowBytes(const Row& row) {
  size_t bytes = kRowOverheadBytes;
  for (const Value& value : row) bytes += ValueBytes(value);
  return bytes;
}

}  // namespace

RowId Table::Insert(Row row) {
  assert(row.size() == schema_.num_columns());
  RowId id = rows_.size();
  for (auto& [col, index] : indexes_) {
    index.emplace(row[col], id);
    index_bytes_ += ValueBytes(row[col]) + kIndexEntryOverheadBytes;
  }
  data_bytes_ += RowBytes(row);
  rows_.push_back(std::move(row));
  return id;
}

Status Table::CreateIndex(const std::string& column) {
  ColumnId col = schema_.Find(column);
  if (col == kInvalidColumn) {
    return Status::NotFound("no column '" + column + "' in table " + name_);
  }
  if (indexes_.count(col) > 0) return Status::OK();
  Index index;
  for (RowId id = 0; id < rows_.size(); ++id) {
    index.emplace(rows_[id][col], id);
    index_bytes_ += ValueBytes(rows_[id][col]) + kIndexEntryOverheadBytes;
  }
  indexes_.emplace(col, std::move(index));
  return Status::OK();
}

size_t Table::EstimateEqualityMatches(ColumnId column,
                                      const Value& value) const {
  auto it = indexes_.find(column);
  if (it == indexes_.end()) return rows_.size();
  auto [lo, hi] = it->second.equal_range(value);
  return static_cast<size_t>(std::distance(lo, hi));
}

namespace {

/// Walks [lo, hi) counting entries, stopping at `limit` — cardinality
/// estimation must not cost more than the plan it is pricing.
template <typename Iter>
size_t CountUpTo(Iter lo, Iter hi, size_t limit) {
  size_t n = 0;
  for (auto it = lo; it != hi && n <= limit; ++it) ++n;
  return n;
}

}  // namespace

Table::AccessPath Table::ChooseAccessPath(
    const Conjunction& predicates) const {
  AccessPath best;
  best.estimated_rows = rows_.size();

  for (const Predicate& p : predicates) {
    auto idx_it = indexes_.find(p.column);
    if (idx_it == indexes_.end()) continue;
    const Index& index = idx_it->second;
    const size_t limit = best.estimated_rows;

    AccessPath cand;
    cand.column = p.column;
    switch (p.op) {
      case CompareOp::kEq: {
        cand.kind = AccessPath::Kind::kIndexEq;
        cand.eq_value = p.value;
        auto [lo, hi] = index.equal_range(p.value);
        cand.estimated_rows = CountUpTo(lo, hi, limit);
        break;
      }
      case CompareOp::kLt:
      case CompareOp::kLe:
        cand.kind = AccessPath::Kind::kIndexRange;
        cand.has_upper = true;
        cand.upper = p.value;
        cand.upper_strict = (p.op == CompareOp::kLt);
        cand.estimated_rows =
            CountUpTo(index.begin(), index.upper_bound(p.value), limit);
        break;
      case CompareOp::kGt:
      case CompareOp::kGe:
        cand.kind = AccessPath::Kind::kIndexRange;
        cand.has_lower = true;
        cand.lower = p.value;
        cand.lower_strict = (p.op == CompareOp::kGt);
        cand.estimated_rows =
            CountUpTo(index.lower_bound(p.value), index.end(), limit);
        break;
      case CompareOp::kLike: {
        // A LIKE pattern with a literal prefix becomes an index range scan
        // over [prefix, prefix + 0xff).
        if (!p.value.is_string()) continue;
        const std::string& pattern = p.value.AsString();
        size_t wild = pattern.find('%');
        if (wild == 0 || wild == std::string::npos) continue;
        std::string prefix = pattern.substr(0, wild);
        cand.kind = AccessPath::Kind::kIndexRange;
        cand.has_lower = true;
        cand.lower = Value(prefix);
        cand.has_upper = true;
        cand.upper = Value(prefix + "\xff");
        cand.estimated_rows = CountUpTo(index.lower_bound(cand.lower),
                                        index.upper_bound(cand.upper), limit);
        break;
      }
      default:
        continue;
    }
    if (cand.estimated_rows < best.estimated_rows ||
        best.kind == AccessPath::Kind::kFullScan) {
      if (cand.estimated_rows <= best.estimated_rows) best = cand;
    }
  }
  return best;
}

std::vector<RowId> Table::Select(const Conjunction& predicates) const {
  return Select(predicates, ScanOptions{});
}

std::vector<RowId> Table::Select(const Conjunction& predicates,
                                 const ScanOptions& options) const {
  // Process-wide access-path counters (per-query numbers live in stats_).
  // One batch of relaxed adds per Select call keeps the overhead a few
  // atomic ops regardless of how many rows the scan touches.
  static obs::Counter* rows_touched = obs::Registry::Default().GetCounter(
      "raptor_relational_rows_touched_total",
      "Rows touched by relational Select calls (scans + index reads)");
  static obs::Counter* full_scans = obs::Registry::Default().GetCounter(
      "raptor_relational_full_scans_total",
      "Select calls that fell back to a full table scan");
  static obs::Counter* index_probes = obs::Registry::Default().GetCounter(
      "raptor_relational_index_probes_total",
      "Select calls served by an index probe");

  // Select may run concurrently from several engine workers, so the shared
  // stats_ fields take one atomic merge per call; the caller-private
  // call_stats copy is plain.
  TableStats delta;
  auto commit_stats = [&] {
    std::atomic_ref<uint64_t>(stats_.rows_scanned)
        .fetch_add(delta.rows_scanned, std::memory_order_relaxed);
    std::atomic_ref<uint64_t>(stats_.index_probes)
        .fetch_add(delta.index_probes, std::memory_order_relaxed);
    std::atomic_ref<uint64_t>(stats_.rows_from_index)
        .fetch_add(delta.rows_from_index, std::memory_order_relaxed);
    std::atomic_ref<uint64_t>(stats_.full_scans)
        .fetch_add(delta.full_scans, std::memory_order_relaxed);
    std::atomic_ref<uint64_t>(stats_.bytes_touched)
        .fetch_add(delta.bytes_touched, std::memory_order_relaxed);
    if (options.call_stats != nullptr) {
      options.call_stats->rows_scanned += delta.rows_scanned;
      options.call_stats->index_probes += delta.index_probes;
      options.call_stats->rows_from_index += delta.rows_from_index;
      options.call_stats->full_scans += delta.full_scans;
      options.call_stats->bytes_touched += delta.bytes_touched;
    }
  };

  std::vector<RowId> out;
  if (predicates.empty()) {
    out.resize(rows_.size());
    for (RowId id = 0; id < rows_.size(); ++id) out[id] = id;
    delta.rows_scanned += rows_.size();
    ++delta.full_scans;
    delta.bytes_touched += data_bytes_;
    commit_stats();
    full_scans->Increment();
    rows_touched->Increment(rows_.size());
    return out;
  }

  AccessPath path = ChooseAccessPath(predicates);
  if (path.kind == AccessPath::Kind::kFullScan) {
    if (options.expected_rows > 0) {
      out.reserve(std::min(options.expected_rows, rows_.size()));
    }
    size_t ways = options.pool == nullptr ? 1 : options.num_threads;
    if (ways == 0) ways = options.pool->size() + 1;
    size_t grain = std::max<size_t>(1, options.grain);
    if (ways > 1 && rows_.size() >= 2 * grain) {
      // Partition the scan; concatenating per-partition hits in partition
      // order reproduces the serial (insertion-order) result exactly.
      size_t nparts =
          std::min((rows_.size() + grain - 1) / grain, ways * 4);
      size_t per = (rows_.size() + nparts - 1) / nparts;
      std::vector<std::vector<RowId>> parts(nparts);
      options.pool->ParallelFor(
          nparts, 1,
          [&](size_t, size_t begin, size_t end) {
            for (size_t part = begin; part < end; ++part) {
              RowId lo = part * per;
              RowId hi = std::min<RowId>(rows_.size(), lo + per);
              for (RowId id = lo; id < hi; ++id) {
                if (MatchesAll(predicates, rows_[id])) {
                  parts[part].push_back(id);
                }
              }
            }
          },
          ways);
      for (const std::vector<RowId>& part : parts) {
        out.insert(out.end(), part.begin(), part.end());
      }
    } else {
      for (RowId id = 0; id < rows_.size(); ++id) {
        if (MatchesAll(predicates, rows_[id])) out.push_back(id);
      }
    }
    delta.rows_scanned += rows_.size();
    ++delta.full_scans;
    delta.bytes_touched += data_bytes_;
    commit_stats();
    full_scans->Increment();
    rows_touched->Increment(rows_.size());
    return out;
  }

  const Index& index = indexes_.at(path.column);
  ++delta.index_probes;
  index_probes->Increment();
  Index::const_iterator lo, hi;
  if (path.kind == AccessPath::Kind::kIndexEq) {
    std::tie(lo, hi) = index.equal_range(path.eq_value);
  } else {
    lo = path.has_lower ? (path.lower_strict ? index.upper_bound(path.lower)
                                             : index.lower_bound(path.lower))
                        : index.begin();
    hi = path.has_upper ? (path.upper_strict ? index.lower_bound(path.upper)
                                             : index.upper_bound(path.upper))
                        : index.end();
  }
  uint64_t from_index = 0;
  for (auto it = lo; it != hi; ++it) {
    ++from_index;
    if (MatchesAll(predicates, rows_[it->second])) out.push_back(it->second);
  }
  delta.rows_from_index += from_index;
  // Index reads touch one row per matching entry; price them at the table's
  // average row width so byte counts stay deterministic and O(1) to derive.
  delta.bytes_touched += from_index * AvgRowBytes();
  commit_stats();
  rows_touched->Increment(from_index);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace raptor::rel
