#include "storage/relational/segment.h"

#include <algorithm>

namespace raptor::rel {

EventSegmentStore::EventSegmentStore(size_t segment_rows)
    : segment_rows_(segment_rows) {
  if (segment_rows_ == 0) segment_rows_ = kDefaultSegmentRows;
  // Posting lists hold uint16 in-segment offsets.
  if (segment_rows_ > 65536) segment_rows_ = 65536;
}

void EventSegmentStore::Append(int64_t id, int64_t subject, int64_t object,
                               int64_t op, int64_t start_time,
                               int64_t end_time) {
  const size_t row = start_.size();
  const size_t offset = row % segment_rows_;
  if (offset == 0) {
    Segment seg;
    seg.begin = row;
    // Blooms sized for the typical distinct-entity count of one segment
    // (well under one entity per row); ~2 KiB each at the default size.
    seg.subject_bloom = BloomFilter(segment_rows_ / 4);
    seg.object_bloom = BloomFilter(segment_rows_ / 4);
    segments_.push_back(std::move(seg));
  }
  Segment& seg = segments_.back();

  const uint32_t subj_code = subject_dict_.Intern(subject);
  const uint32_t obj_code = object_dict_.Intern(object);
  const uint32_t op_code = op_dict_.Intern(op);

  id_.push_back(id);
  subject_code_.push_back(subj_code);
  object_code_.push_back(obj_code);
  op_code_.push_back(static_cast<uint8_t>(op_code));
  start_.push_back(start_time);
  end_.push_back(end_time);

  if (seg.count == 0) {
    seg.min_start = seg.max_start = start_time;
    seg.min_subject = seg.max_subject = subject;
    seg.min_object = seg.max_object = object;
  } else {
    seg.min_start = std::min(seg.min_start, start_time);
    seg.max_start = std::max(seg.max_start, start_time);
    seg.min_subject = std::min(seg.min_subject, subject);
    seg.max_subject = std::max(seg.max_subject, subject);
    seg.min_object = std::min(seg.min_object, object);
    seg.max_object = std::max(seg.max_object, object);
  }
  seg.subject_bloom.Add(static_cast<uint64_t>(subject));
  seg.object_bloom.Add(static_cast<uint64_t>(object));

  auto [op_it, op_new] = seg.op_rows.try_emplace(op_code);
  if (op_new) op_it->second.Resize(segment_rows_);
  op_it->second.Set(offset);
  seg.subject_rows[subj_code].push_back(static_cast<uint16_t>(offset));
  seg.object_rows[obj_code].push_back(static_cast<uint16_t>(offset));
  ++seg.count;
}

EventRecord EventSegmentStore::Record(size_t row) const {
  EventRecord r;
  r.id = id_[row];
  r.subject = subject_dict_.value(subject_code_[row]);
  r.object = object_dict_.value(object_code_[row]);
  r.op = op_dict_.value(op_code_[row]);
  r.start_time = start_[row];
  r.end_time = end_[row];
  return r;
}

std::vector<uint32_t> EventSegmentStore::PruneByWindow(
    std::optional<int64_t> lo, std::optional<int64_t> hi) const {
  std::vector<uint32_t> keep;
  keep.reserve(segments_.size());
  for (size_t s = 0; s < segments_.size(); ++s) {
    if (WindowOverlaps(segments_[s], lo, hi)) {
      keep.push_back(static_cast<uint32_t>(s));
    }
  }
  return keep;
}

void EventSegmentStore::ProbeEntity(
    Side side, int64_t entity_id, const std::unordered_set<int64_t>& op_set,
    std::optional<int64_t> window_start, std::optional<int64_t> window_end,
    const std::unordered_set<uint64_t>* other_filter,
    std::vector<EventRecord>* out, SegmentProbeStats* stats) const {
  ++stats->probes;
  const Dictionary& dict =
      side == Side::kSubject ? subject_dict_ : object_dict_;
  std::optional<uint32_t> code = dict.Find(entity_id);
  if (!code) return;  // Entity appears in no event at all.

  // Operation filter as a flag per dictionary code (the dictionary is tiny:
  // one entry per distinct operation).
  std::vector<char> op_ok(op_dict_.size(), op_set.empty() ? 1 : 0);
  if (!op_set.empty()) {
    for (int64_t op : op_set) {
      if (std::optional<uint32_t> oc = op_dict_.Find(op)) op_ok[*oc] = 1;
    }
  }

  const uint64_t key = static_cast<uint64_t>(entity_id);
  for (const Segment& seg : segments_) {
    ++stats->segments_considered;
    // Zone maps: time window, then the entity-id min/max of this side.
    if (!WindowOverlaps(seg, window_start, window_end)) {
      ++stats->segments_pruned_zone;
      continue;
    }
    const int64_t zmin =
        side == Side::kSubject ? seg.min_subject : seg.min_object;
    const int64_t zmax =
        side == Side::kSubject ? seg.max_subject : seg.max_object;
    if (entity_id < zmin || entity_id > zmax) {
      ++stats->segments_pruned_zone;
      continue;
    }
    const BloomFilter& bloom =
        side == Side::kSubject ? seg.subject_bloom : seg.object_bloom;
    if (!bloom.MayContain(key)) {
      ++stats->segments_pruned_bloom;
      continue;
    }
    // The bloom says "maybe": fall back to the segment's posting lists.
    ++stats->segments_scanned;
    const auto& postings =
        side == Side::kSubject ? seg.subject_rows : seg.object_rows;
    auto it = postings.find(*code);
    if (it == postings.end()) {
      ++stats->bloom_false_positives;
      continue;
    }
    for (uint16_t offset : it->second) {
      const size_t row = seg.begin + offset;
      ++stats->rows_scanned;
      if (window_start && start_[row] < *window_start) continue;
      if (window_end && start_[row] > *window_end) continue;
      if (!op_ok[op_code_[row]]) continue;
      if (other_filter != nullptr) {
        const int64_t other =
            side == Side::kSubject ? object_dict_.value(object_code_[row])
                                   : subject_dict_.value(subject_code_[row]);
        if (other_filter->count(static_cast<uint64_t>(other)) == 0) continue;
      }
      out->push_back(Record(row));
    }
  }
}

bool EventSegmentStore::SharedOpScan(
    const std::vector<OpScanProbe>& probes,
    const std::function<bool()>* should_stop,
    std::vector<std::vector<EventRecord>>* out,
    std::vector<SegmentProbeStats>* stats) const {
  out->assign(probes.size(), {});
  stats->assign(probes.size(), {});

  // Resolve each probe's surviving segments (cached plan or fresh prune)
  // and its declared operations as dictionary codes.
  struct ProbeState {
    std::vector<uint32_t> owned_segments;       // when not cached
    const std::vector<uint32_t>* segments = nullptr;
    size_t next = 0;                            // cursor into *segments
    std::vector<std::optional<uint32_t>> op_codes;  // declared order
    // Per-operation output buckets; concatenated at the end so the shared
    // segment-major pass still emits (operation, row) order per probe.
    std::vector<std::vector<EventRecord>> buckets;
  };
  std::vector<ProbeState> states(probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    ProbeState& st = states[i];
    const OpScanProbe& probe = probes[i];
    if (probe.segments != nullptr) {
      st.segments = probe.segments;
    } else {
      st.owned_segments = PruneByWindow(probe.window_start, probe.window_end);
      st.segments = &st.owned_segments;
    }
    st.op_codes.reserve(probe.ops.size());
    for (int64_t op : probe.ops) st.op_codes.push_back(op_dict_.Find(op));
    st.buckets.resize(probe.ops.size());
    SegmentProbeStats& s = (*stats)[i];
    s.probes = probe.ops.size();
    s.segments_considered = segments_.size();
    s.segments_pruned_zone = segments_.size() - st.segments->size();
  }

  bool complete = true;
  for (uint32_t seg_id = 0; seg_id < segments_.size(); ++seg_id) {
    // Which probes want this segment? (Each cursor advances monotonically;
    // segment lists are ascending.)
    bool any = false;
    for (const ProbeState& st : states) {
      if (st.next < st.segments->size() && (*st.segments)[st.next] == seg_id) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    if (should_stop != nullptr && (*should_stop)()) {
      complete = false;
      break;
    }
    const Segment& seg = segments_[seg_id];
    for (size_t i = 0; i < probes.size(); ++i) {
      ProbeState& st = states[i];
      if (st.next >= st.segments->size() ||
          (*st.segments)[st.next] != seg_id) {
        continue;
      }
      ++st.next;
      SegmentProbeStats& s = (*stats)[i];
      ++s.segments_scanned;
      const OpScanProbe& probe = probes[i];
      for (size_t k = 0; k < st.op_codes.size(); ++k) {
        if (!st.op_codes[k]) continue;  // op never ingested: zero rows
        auto it = seg.op_rows.find(*st.op_codes[k]);
        if (it == seg.op_rows.end()) continue;
        it->second.ForEachSet([&](size_t offset) {
          const size_t row = seg.begin + offset;
          ++s.rows_scanned;
          if (probe.window_start && start_[row] < *probe.window_start) return;
          if (probe.window_end && start_[row] > *probe.window_end) return;
          st.buckets[k].push_back(Record(row));
        });
      }
    }
  }

  for (size_t i = 0; i < probes.size(); ++i) {
    ProbeState& st = states[i];
    size_t total = 0;
    for (const auto& b : st.buckets) total += b.size();
    std::vector<EventRecord>& dst = (*out)[i];
    dst.reserve(total);
    for (auto& b : st.buckets) {
      dst.insert(dst.end(), b.begin(), b.end());
    }
  }
  return complete;
}

size_t EventSegmentStore::ApproxBytes() const {
  size_t total = sizeof(*this);
  total += id_.capacity() * sizeof(int64_t);
  total += subject_code_.capacity() * sizeof(uint32_t);
  total += object_code_.capacity() * sizeof(uint32_t);
  total += op_code_.capacity() * sizeof(uint8_t);
  total += start_.capacity() * sizeof(int64_t);
  total += end_.capacity() * sizeof(int64_t);
  total += subject_dict_.ApproxBytes() + object_dict_.ApproxBytes() +
           op_dict_.ApproxBytes();
  for (const Segment& seg : segments_) {
    total += sizeof(Segment);
    total += seg.subject_bloom.ApproxBytes() + seg.object_bloom.ApproxBytes();
    for (const auto& [code, bitmap] : seg.op_rows) {
      total += sizeof(code) + bitmap.ApproxBytes();
    }
    for (const auto* postings : {&seg.subject_rows, &seg.object_rows}) {
      for (const auto& [code, rows] : *postings) {
        total += sizeof(code) + 2 * sizeof(void*) +
                 rows.capacity() * sizeof(uint16_t);
      }
    }
  }
  return total;
}

}  // namespace raptor::rel
