#include "storage/relational/column.h"

#include "storage/stats/sketches.h"

namespace raptor::rel {

size_t Bitmap::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
  return n;
}

uint32_t Dictionary::Intern(int64_t value) {
  auto [it, inserted] =
      code_of_.emplace(value, static_cast<uint32_t>(values_.size()));
  if (inserted) values_.push_back(value);
  return it->second;
}

std::optional<uint32_t> Dictionary::Find(int64_t value) const {
  auto it = code_of_.find(value);
  if (it == code_of_.end()) return std::nullopt;
  return it->second;
}

size_t Dictionary::ApproxBytes() const {
  return sizeof(*this) + values_.capacity() * sizeof(int64_t) +
         code_of_.size() * (sizeof(int64_t) + sizeof(uint32_t) +
                            2 * sizeof(void*));
}

BloomFilter::BloomFilter(size_t expected_keys) {
  size_t bits = 64;
  while (bits < expected_keys * 10) bits <<= 1;
  mask_ = bits - 1;
  words_.assign(bits / 64, 0);
}

void BloomFilter::Add(uint64_t key) {
  uint64_t h1 = stats::MixHash(key);
  uint64_t h2 = stats::MixHash(key ^ 0x9e3779b97f4a7c15ULL);
  words_[(h1 & mask_) >> 6] |= uint64_t{1} << (h1 & 63);
  words_[(h2 & mask_) >> 6] |= uint64_t{1} << (h2 & 63);
}

bool BloomFilter::MayContain(uint64_t key) const {
  if (words_.empty()) return false;
  uint64_t h1 = stats::MixHash(key);
  uint64_t h2 = stats::MixHash(key ^ 0x9e3779b97f4a7c15ULL);
  if (!((words_[(h1 & mask_) >> 6] >> (h1 & 63)) & 1)) return false;
  return (words_[(h2 & mask_) >> 6] >> (h2 & 63)) & 1;
}

}  // namespace raptor::rel
