#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

namespace raptor {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool Contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t cur = row[i];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, prev_diag + cost});
      prev_diag = cur;
    }
  }
  return row[a.size()];
}

double BigramDiceSimilarity(std::string_view a, std::string_view b) {
  if (a == b) return 1.0;
  if (a.size() < 2 || b.size() < 2) return 0.0;
  std::unordered_map<uint16_t, int> counts;
  for (size_t i = 0; i + 1 < a.size(); ++i) {
    uint16_t bg = static_cast<uint16_t>(
        (static_cast<unsigned char>(a[i]) << 8) |
        static_cast<unsigned char>(a[i + 1]));
    ++counts[bg];
  }
  size_t overlap = 0;
  for (size_t i = 0; i + 1 < b.size(); ++i) {
    uint16_t bg = static_cast<uint16_t>(
        (static_cast<unsigned char>(b[i]) << 8) |
        static_cast<unsigned char>(b[i + 1]));
    auto it = counts.find(bg);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++overlap;
    }
  }
  return 2.0 * static_cast<double>(overlap) /
         static_cast<double>((a.size() - 1) + (b.size() - 1));
}

bool LikeMatch(std::string_view value, std::string_view pattern) {
  // Iterative wildcard match with backtracking over '%'.
  size_t v = 0, p = 0;
  size_t star_p = std::string_view::npos, star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (p < pattern.size() && pattern[p] == value[v]) {
      ++p;
      ++v;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace raptor
