#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>

#include "common/strings.h"

namespace raptor {

namespace {

const Json& SharedNull() {
  static const Json* null = new Json();
  return *null;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    RAPTOR_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& msg) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return Status::ParseError(StrFormat("line %zu: %s", line, msg.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    SkipWhitespace();
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        if (ConsumeWord("true")) return Json(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return Json(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) return Json(nullptr);
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json::Object object;
    if (Consume('}')) return Json(std::move(object));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key in object");
      }
      RAPTOR_ASSIGN_OR_RETURN(Json key, ParseString());
      if (!Consume(':')) return Error("expected ':' after object key");
      RAPTOR_ASSIGN_OR_RETURN(Json value, ParseValue());
      object.emplace(key.AsString(), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    return Json(std::move(object));
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json::Array array;
    if (Consume(']')) return Json(std::move(array));
    while (true) {
      RAPTOR_ASSIGN_OR_RETURN(Json value, ParseValue());
      array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    return Json(std::move(array));
  }

  Result<Json> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Json(std::move(out));
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogates unsupported).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseNumber() {
    SkipWhitespace();
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0;
    auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_ || pos_ == start) {
      return Error("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void EscapeInto(const std::string& s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace

const Json& Json::operator[](const std::string& key) const {
  if (!is_object()) return SharedNull();
  auto it = object_.find(key);
  return it == object_.end() ? SharedNull() : it->second;
}

const Json& Json::operator[](size_t index) const {
  if (!is_array() || index >= array_.size()) return SharedNull();
  return array_[index];
}

Result<Json> Json::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  std::string pad, close_pad;
  if (indent > 0) {
    pad = '\n' + std::string(static_cast<size_t>(indent) *
                                 (static_cast<size_t>(depth) + 1),
                             ' ');
    close_pad = '\n' + std::string(static_cast<size_t>(indent) *
                                       static_cast<size_t>(depth),
                                   ' ');
  }
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      if (number_ == std::floor(number_) && std::abs(number_) < 1e15) {
        *out += StrFormat("%lld", static_cast<long long>(number_));
      } else {
        *out += StrFormat("%.17g", number_);
      }
      break;
    case Type::kString:
      EscapeInto(string_, out);
      break;
    case Type::kArray: {
      *out += '[';
      bool first = true;
      for (const Json& v : array_) {
        if (!first) *out += ',';
        first = false;
        *out += pad;
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) *out += close_pad;
      *out += ']';
      break;
    }
    case Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) *out += ',';
        first = false;
        *out += pad;
        EscapeInto(key, out);
        *out += indent > 0 ? ": " : ":";
        value.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) *out += close_pad;
      *out += '}';
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

}  // namespace raptor
