// Build identity: the version from the CMake project() call and the git
// revision the binary was configured from. Exposed as the
// raptor_build_info info-gauge on /api/metrics and in the build block of
// /api/stats and /api/debug/bundle, so a scrape or a diagnostic bundle
// always says which build produced it.
#pragma once

#include <string_view>

namespace raptor {

/// Semantic version from CMake (project VERSION), e.g. "1.0.0".
std::string_view BuildVersion();

/// Short git revision the build was configured from; "unknown" when the
/// source tree was not a git checkout at configure time.
std::string_view BuildGitSha();

/// Compiler identification string (__VERSION__).
std::string_view BuildCompiler();

}  // namespace raptor
