#include "common/build_info.h"

#ifndef RAPTOR_VERSION
#define RAPTOR_VERSION "0.0.0"
#endif
#ifndef RAPTOR_GIT_SHA
#define RAPTOR_GIT_SHA "unknown"
#endif

namespace raptor {

std::string_view BuildVersion() { return RAPTOR_VERSION; }

std::string_view BuildGitSha() { return RAPTOR_GIT_SHA; }

std::string_view BuildCompiler() { return __VERSION__; }

}  // namespace raptor
