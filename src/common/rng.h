// Deterministic pseudo-random number generator used by the workload
// generator and property tests. Deterministic seeding keeps every benchmark
// and test reproducible across runs and platforms.

#pragma once

#include <cstdint>
#include <vector>

namespace raptor {

/// \brief xoshiro256** generator with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 expansion of the seed into the full state.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

  /// Zipf-like skewed index in [0, n): lower indexes are more likely.
  /// Used to model hot files/processes in the synthetic workload.
  size_t Skewed(size_t n) {
    if (n <= 1) return 0;
    double u = NextDouble();
    // Quadratic skew: P(idx < k) = sqrt(k / n).
    auto idx = static_cast<size_t>(u * u * static_cast<double>(n));
    return idx >= n ? n - 1 : idx;
  }

  /// Picks a uniformly random element of `v`; `v` must be non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace raptor
