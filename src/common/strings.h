// Small string utilities shared across modules.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace raptor {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Returns true if `s` contains `needle`.
bool Contains(std::string_view s, std::string_view needle);

/// Replaces every occurrence of `from` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Classic edit distance; used by IOC merge and test helpers.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Dice coefficient over character bigrams, in [0, 1]; 1 for identical
/// strings. Used for the character-level overlap half of IOC merging.
double BigramDiceSimilarity(std::string_view a, std::string_view b);

/// SQL LIKE-style match where '%' matches any run of characters. Used by
/// attribute filters ("%/bin/tar%"). Case-sensitive.
bool LikeMatch(std::string_view value, std::string_view pattern);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace raptor
