// Status: the error model used throughout ThreatRaptor.
//
// Follows the RocksDB/Arrow convention: library code does not throw; fallible
// operations return a Status (or a Result<T>, see result.h) that callers must
// inspect. A default-constructed Status is OK.

#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace raptor {

/// \brief Outcome of a fallible operation.
///
/// Cheap to copy in the OK case (no allocation); error states carry a code
/// and a human-readable message.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kParseError,
    kTypeError,
    kUnsupported,
    kInternal,
  };

  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(Code::kTypeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsParseError() const { return code_ == Code::kParseError; }
  bool IsTypeError() const { return code_ == Code::kTypeError; }
  bool IsUnsupported() const { return code_ == Code::kUnsupported; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "ParseError: unexpected token at line 3".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Returns the status from the current function if `expr` is not OK.
#define RAPTOR_RETURN_NOT_OK(expr)             \
  do {                                         \
    ::raptor::Status _st = (expr);             \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace raptor
