// Minimal JSON parser and writer (substrate for the STIX-like structured
// OSCTI feed ingester; see src/cti/). Supports the full JSON value model
// with the usual escape sequences; numbers are held as doubles.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace raptor {

/// \brief A JSON value (null, bool, number, string, array, object).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}             // NOLINT
  Json(bool b) : type_(Type::kBool), bool_(b) {}           // NOLINT
  Json(double n) : type_(Type::kNumber), number_(n) {}     // NOLINT
  Json(int n) : type_(Type::kNumber), number_(n) {}        // NOLINT
  Json(std::string s)                                      // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}            // NOLINT
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}    // NOLINT
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  const Object& AsObject() const { return object_; }

  /// Object member access; returns a shared null for missing keys or
  /// non-objects, so lookups chain safely: j["a"]["b"].AsString().
  const Json& operator[](const std::string& key) const;
  /// Array element access; shared null when out of range.
  const Json& operator[](size_t index) const;

  /// Member presence test (false for non-objects).
  bool Contains(const std::string& key) const {
    return is_object() && object_.count(key) > 0;
  }

  /// Parses a JSON document. Reports line numbers on errors.
  static Result<Json> Parse(std::string_view text);

  /// Serializes; `indent` > 0 pretty-prints with that many spaces.
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace raptor
