#include "common/fault_injection.h"

#include <atomic>

#include "obs/log.h"
#include "obs/metrics.h"

namespace raptor {

namespace {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace

void SetFaultInjector(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

Status TriggerFaultPoint(std::string_view point) {
  FaultInjector* injector = g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return Status::OK();
  Status status = injector->OnPoint(point);
  if (!status.ok()) {
    // Registration cost only on actual injections, which are test-driven
    // and rare; the uninstrumented path above stays one atomic load.
    obs::Registry::Default()
        .GetCounter("raptor_faults_injected_total",
                    "Faults injected by the test harness, by hook point",
                    {{"point", std::string(point)}})
        ->Increment();
    obs::Logger::Default()
        .Log(obs::LogLevel::kWarn, "fault", "fault injected")
        .Field("point", point)
        .Field("error", status.ToString());
  }
  return status;
}

}  // namespace raptor
