#include "common/fault_injection.h"

#include <atomic>

namespace raptor {

namespace {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace

void SetFaultInjector(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

Status TriggerFaultPoint(std::string_view point) {
  FaultInjector* injector = g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return Status::OK();
  return injector->OnPoint(point);
}

}  // namespace raptor
