// Result<T>: a value-or-Status, the Arrow idiom for fallible producers.

#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace raptor {

/// \brief Holds either a value of type T or an error Status.
///
/// A Result constructed from an OK status is invalid; producers must supply
/// either a value or a non-OK status.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : state_(std::move(value)) {}  // NOLINT: implicit by design

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(state_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// Returns the error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  /// Accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<Status, T> state_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the current function.
#define RAPTOR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define RAPTOR_ASSIGN_OR_RETURN(lhs, expr) \
  RAPTOR_ASSIGN_OR_RETURN_IMPL(            \
      RAPTOR_CONCAT_(_result_, __LINE__), lhs, expr)

#define RAPTOR_CONCAT_INNER_(a, b) a##b
#define RAPTOR_CONCAT_(a, b) RAPTOR_CONCAT_INNER_(a, b)

}  // namespace raptor
