// Fixed-size worker pool shared by the parallel execution layer.
//
// Two entry points:
//   Submit       one fire-and-forget-or-future task, queued FIFO.
//   ParallelFor  fork/join over an index range with grain-size control —
//                the caller participates (so a pool of N threads yields
//                N+1-way parallelism, and nested ParallelFor from a worker
//                cannot deadlock waiting on a full queue), chunks are
//                claimed via one shared atomic, and the caller's active
//                obs::Tracer trace is propagated into the helper tasks so
//                worker spans and log records stay trace-correlated.
//
// The shared process pool (ThreadPool::Shared()) is what the engine,
// storage, and ingestion layers use; its size is fixed at first use. Pool
// activity is exported through obs::Registry as the raptor_pool_* metrics
// (see docs/OBSERVABILITY.md).

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace raptor {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains nothing: queued tasks not yet started are dropped; running
  /// tasks are joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool. Sized max(4, hardware_concurrency) so that
  /// concurrency tests exercise real interleaving even on small machines;
  /// constructed on first use, never destroyed (workers park on the queue
  /// condition variable when idle).
  static ThreadPool& Shared();

  /// Hardware concurrency with a floor of 1 (std::thread reports 0 when it
  /// cannot tell). This is what a num_threads knob of 0 resolves to.
  static size_t HardwareThreads();

  size_t size() const { return workers_.size(); }

  /// Enqueues one task and returns a future for its result. Exceptions
  /// propagate through the future.
  template <typename F>
  auto Submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    Enqueue([packaged] { (*packaged)(); });
    return future;
  }

  /// Runs `body(chunk, begin, end)` over a partition of [0, total) into
  /// contiguous chunks of at least `grain` indexes each (the last chunk may
  /// be shorter), using up to `num_threads`-way parallelism (0 = pool size
  /// + 1). The caller executes chunks too; the call returns when every
  /// chunk has run. Chunk boundaries depend only on (total, grain,
  /// num_threads), so callers that concatenate per-chunk results in chunk
  /// order get a deterministic, serial-order result. The first exception
  /// thrown by any chunk is rethrown here after the join.
  void ParallelFor(size_t total, size_t grain,
                   const std::function<void(size_t, size_t, size_t)>& body,
                   size_t num_threads = 0);

 private:
  /// A queued task plus its enqueue time, so the dequeueing worker can
  /// observe the queue wait (raptor_pool_task_wait_ms — the profiler's
  /// queue-wait attribution reads it too).
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace raptor
