#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace raptor {

namespace {

struct PoolMetrics {
  obs::Gauge* threads;
  obs::Gauge* busy;
  obs::Counter* tasks;
  obs::Counter* regions;
  obs::Histogram* task_ms;
  obs::Histogram* task_wait_ms;

  static PoolMetrics& Get() {
    static PoolMetrics* m = [] {
      auto* metrics = new PoolMetrics();
      obs::Registry& reg = obs::Registry::Default();
      metrics->threads = reg.GetGauge(
          "raptor_pool_threads", "Worker threads in the shared thread pool");
      metrics->busy = reg.GetGauge(
          "raptor_pool_busy_workers", "Pool workers currently running a task");
      metrics->tasks = reg.GetCounter(
          "raptor_pool_tasks_total", "Tasks executed by pool workers");
      metrics->regions = reg.GetCounter(
          "raptor_pool_parallel_regions_total",
          "ParallelFor fork/join regions entered");
      metrics->task_ms = reg.GetHistogram(
          "raptor_pool_task_ms", "Wall time of one pool worker task (ms)");
      metrics->task_wait_ms = reg.GetHistogram(
          "raptor_pool_task_wait_ms",
          "Time a task waited in the pool queue before a worker ran it (ms)");
      return metrics;
    }();
    return *m;
  }
};

/// Shared state of one ParallelFor region. Helpers hold it via shared_ptr:
/// a helper dequeued after the region already completed (every chunk
/// claimed by faster participants) must still be able to read `next`.
struct Region {
  const std::function<void(size_t, size_t, size_t)>* body = nullptr;
  size_t total = 0;
  size_t chunk_size = 0;
  size_t num_chunks = 0;
  std::atomic<size_t> next{0};
  obs::TraceContext trace;

  std::mutex mu;
  std::condition_variable cv;
  size_t chunks_done = 0;
  std::exception_ptr error;
};

/// Claims and runs chunks until none remain; returns how many it ran.
/// Does NOT count them as done — the participant commits via CommitChunks
/// after releasing its trace scope, so the joining caller cannot observe
/// completion (and Merge the trace) before the worker's subtree is stashed.
size_t RunChunks(Region& region) {
  size_t ran = 0;
  for (;;) {
    size_t chunk = region.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= region.num_chunks) break;
    size_t begin = chunk * region.chunk_size;
    size_t end = std::min(region.total, begin + region.chunk_size);
    try {
      (*region.body)(chunk, begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(region.mu);
      if (!region.error) region.error = std::current_exception();
    }
    ++ran;
  }
  return ran;
}

void CommitChunks(Region& region, size_t ran) {
  if (ran == 0) return;
  std::lock_guard<std::mutex> lock(region.mu);
  region.chunks_done += ran;
  if (region.chunks_done == region.num_chunks) region.cv.notify_all();
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    auto* p = new ThreadPool(std::max<size_t>(4, HardwareThreads()));
    PoolMetrics::Get().threads->Set(static_cast<int64_t>(p->size()));
    return p;
  }();
  return *pool;
}

size_t ThreadPool::HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back({std::move(task), std::chrono::steady_clock::now()});
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  obs::ProfiledThread profiled("pool-worker");
  PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    auto t0 = std::chrono::steady_clock::now();
    metrics.task_wait_ms->Observe(
        std::chrono::duration<double, std::milli>(t0 - task.enqueued)
            .count());
    metrics.busy->Add(1);
    metrics.tasks->Increment();
    task.fn();
    metrics.task_ms->Observe(std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count());
    metrics.busy->Add(-1);
  }
}

void ThreadPool::ParallelFor(
    size_t total, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& body,
    size_t num_threads) {
  if (total == 0) return;
  size_t ways = num_threads == 0 ? workers_.size() + 1 : num_threads;
  size_t chunk = std::max<size_t>(1, grain);
  // At most 4 chunks per participant: enough slack for load balancing
  // without paying per-chunk overhead on tiny grains.
  size_t max_chunks = std::max<size_t>(1, ways * 4);
  chunk = std::max(chunk, (total + max_chunks - 1) / max_chunks);
  size_t num_chunks = (total + chunk - 1) / chunk;

  if (ways <= 1 || num_chunks <= 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      body(c, c * chunk, std::min(total, (c + 1) * chunk));
    }
    return;
  }

  PoolMetrics::Get().regions->Increment();
  auto region = std::make_shared<Region>();
  region->body = &body;
  region->total = total;
  region->chunk_size = chunk;
  region->num_chunks = num_chunks;
  region->trace = obs::TraceContext::Capture();

  size_t helpers = std::min(ways - 1, num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Enqueue([region] {
      size_t ran = 0;
      {
        obs::TraceContext::Scope scope = region->trace.Adopt("pool-task");
        ran = RunChunks(*region);
      }
      CommitChunks(*region, ran);
    });
  }
  CommitChunks(*region, RunChunks(*region));
  {
    std::unique_lock<std::mutex> lock(region->mu);
    region->cv.wait(lock,
                    [&] { return region->chunks_done == region->num_chunks; });
  }
  region->trace.Merge();
  if (region->error) std::rethrow_exception(region->error);
}

}  // namespace raptor
