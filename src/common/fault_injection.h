// Fault-injection hook points for resilience testing.
//
// Production code marks interesting failure sites with
// `RAPTOR_RETURN_NOT_OK(TriggerFaultPoint("layer.site"))`. In normal
// operation no injector is installed and the hook is a single relaxed
// atomic load. Tests install a FaultInjector (see tests/fault_injection.h
// for the scripted harness) to flip those sites into error Statuses or
// delays and prove the system degrades instead of dying.
//
// Registered points (keep this list current; resilience_test relies on it):
//   audit.parser.line      — LogParser::ParseLine, before parsing
//   synthesis.synthesize   — QuerySynthesizer::Synthesize, on entry
//   engine.execute         — QueryEngine::Execute, on entry
//   engine.pattern         — QueryEngine::Execute, before each pattern
//   server.handler         — HttpServer, before invoking a route handler

#pragma once

#include <string_view>

#include "common/status.h"

namespace raptor {

/// \brief Test-installed hook that decides the fate of a fault point.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Called once per hit of `point`. Return a non-OK Status to make the
  /// site fail; sleep inside to inject latency. Must be thread-safe: the
  /// server hits points from its accept thread.
  virtual Status OnPoint(std::string_view point) = 0;
};

/// Installs `injector` process-wide (nullptr uninstalls). The caller keeps
/// ownership and must uninstall before destroying it.
void SetFaultInjector(FaultInjector* injector);

/// Evaluates the fault point `point`: OK when no injector is installed,
/// otherwise whatever the injector decides.
Status TriggerFaultPoint(std::string_view point);

}  // namespace raptor
