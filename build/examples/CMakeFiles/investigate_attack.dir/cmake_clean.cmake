file(REMOVE_RECURSE
  "CMakeFiles/investigate_attack.dir/investigate_attack.cpp.o"
  "CMakeFiles/investigate_attack.dir/investigate_attack.cpp.o.d"
  "investigate_attack"
  "investigate_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/investigate_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
