# Empty compiler generated dependencies file for investigate_attack.
# This may be replaced when dependencies are built.
