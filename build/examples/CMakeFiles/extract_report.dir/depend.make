# Empty dependencies file for extract_report.
# This may be replaced when dependencies are built.
