file(REMOVE_RECURSE
  "CMakeFiles/extract_report.dir/extract_report.cpp.o"
  "CMakeFiles/extract_report.dir/extract_report.cpp.o.d"
  "extract_report"
  "extract_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
