# Empty dependencies file for hunt_password_cracking.
# This may be replaced when dependencies are built.
