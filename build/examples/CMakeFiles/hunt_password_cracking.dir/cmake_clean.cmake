file(REMOVE_RECURSE
  "CMakeFiles/hunt_password_cracking.dir/hunt_password_cracking.cpp.o"
  "CMakeFiles/hunt_password_cracking.dir/hunt_password_cracking.cpp.o.d"
  "hunt_password_cracking"
  "hunt_password_cracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hunt_password_cracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
