file(REMOVE_RECURSE
  "CMakeFiles/tbql_shell.dir/tbql_shell.cpp.o"
  "CMakeFiles/tbql_shell.dir/tbql_shell.cpp.o.d"
  "tbql_shell"
  "tbql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
