# Empty dependencies file for tbql_shell.
# This may be replaced when dependencies are built.
