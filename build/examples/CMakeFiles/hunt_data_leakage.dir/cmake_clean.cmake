file(REMOVE_RECURSE
  "CMakeFiles/hunt_data_leakage.dir/hunt_data_leakage.cpp.o"
  "CMakeFiles/hunt_data_leakage.dir/hunt_data_leakage.cpp.o.d"
  "hunt_data_leakage"
  "hunt_data_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hunt_data_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
