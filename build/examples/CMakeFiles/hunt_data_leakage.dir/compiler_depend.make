# Empty compiler generated dependencies file for hunt_data_leakage.
# This may be replaced when dependencies are built.
