file(REMOVE_RECURSE
  "CMakeFiles/stix_feed_hunt.dir/stix_feed_hunt.cpp.o"
  "CMakeFiles/stix_feed_hunt.dir/stix_feed_hunt.cpp.o.d"
  "stix_feed_hunt"
  "stix_feed_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stix_feed_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
