# Empty compiler generated dependencies file for stix_feed_hunt.
# This may be replaced when dependencies are built.
