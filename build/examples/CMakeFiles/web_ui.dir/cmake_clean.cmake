file(REMOVE_RECURSE
  "CMakeFiles/web_ui.dir/web_ui.cpp.o"
  "CMakeFiles/web_ui.dir/web_ui.cpp.o.d"
  "web_ui"
  "web_ui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_ui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
