# Empty dependencies file for web_ui.
# This may be replaced when dependencies are built.
