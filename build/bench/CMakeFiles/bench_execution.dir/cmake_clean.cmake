file(REMOVE_RECURSE
  "CMakeFiles/bench_execution.dir/bench_execution.cc.o"
  "CMakeFiles/bench_execution.dir/bench_execution.cc.o.d"
  "bench_execution"
  "bench_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
