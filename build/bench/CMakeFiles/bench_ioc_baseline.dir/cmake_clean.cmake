file(REMOVE_RECURSE
  "CMakeFiles/bench_ioc_baseline.dir/bench_ioc_baseline.cc.o"
  "CMakeFiles/bench_ioc_baseline.dir/bench_ioc_baseline.cc.o.d"
  "bench_ioc_baseline"
  "bench_ioc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ioc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
