# Empty dependencies file for bench_ioc_baseline.
# This may be replaced when dependencies are built.
