# Empty dependencies file for bench_hunt_leakage.
# This may be replaced when dependencies are built.
