file(REMOVE_RECURSE
  "CMakeFiles/bench_hunt_leakage.dir/bench_hunt_leakage.cc.o"
  "CMakeFiles/bench_hunt_leakage.dir/bench_hunt_leakage.cc.o.d"
  "bench_hunt_leakage"
  "bench_hunt_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hunt_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
