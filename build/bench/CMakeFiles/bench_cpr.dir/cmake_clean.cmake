file(REMOVE_RECURSE
  "CMakeFiles/bench_cpr.dir/bench_cpr.cc.o"
  "CMakeFiles/bench_cpr.dir/bench_cpr.cc.o.d"
  "bench_cpr"
  "bench_cpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
