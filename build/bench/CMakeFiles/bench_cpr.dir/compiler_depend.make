# Empty compiler generated dependencies file for bench_cpr.
# This may be replaced when dependencies are built.
