# Empty dependencies file for bench_hunt_password.
# This may be replaced when dependencies are built.
