file(REMOVE_RECURSE
  "CMakeFiles/bench_hunt_password.dir/bench_hunt_password.cc.o"
  "CMakeFiles/bench_hunt_password.dir/bench_hunt_password.cc.o.d"
  "bench_hunt_password"
  "bench_hunt_password.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hunt_password.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
