file(REMOVE_RECURSE
  "CMakeFiles/bench_conciseness.dir/bench_conciseness.cc.o"
  "CMakeFiles/bench_conciseness.dir/bench_conciseness.cc.o.d"
  "bench_conciseness"
  "bench_conciseness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conciseness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
