# Empty compiler generated dependencies file for bench_conciseness.
# This may be replaced when dependencies are built.
