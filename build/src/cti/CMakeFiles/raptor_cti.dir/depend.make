# Empty dependencies file for raptor_cti.
# This may be replaced when dependencies are built.
