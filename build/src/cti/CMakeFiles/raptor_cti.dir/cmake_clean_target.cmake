file(REMOVE_RECURSE
  "libraptor_cti.a"
)
