file(REMOVE_RECURSE
  "CMakeFiles/raptor_cti.dir/feed.cc.o"
  "CMakeFiles/raptor_cti.dir/feed.cc.o.d"
  "libraptor_cti.a"
  "libraptor_cti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raptor_cti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
