# Empty dependencies file for raptor_server.
# This may be replaced when dependencies are built.
