file(REMOVE_RECURSE
  "libraptor_server.a"
)
