file(REMOVE_RECURSE
  "CMakeFiles/raptor_server.dir/api.cc.o"
  "CMakeFiles/raptor_server.dir/api.cc.o.d"
  "CMakeFiles/raptor_server.dir/http.cc.o"
  "CMakeFiles/raptor_server.dir/http.cc.o.d"
  "libraptor_server.a"
  "libraptor_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raptor_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
