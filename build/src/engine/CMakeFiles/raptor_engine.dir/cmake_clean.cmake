file(REMOVE_RECURSE
  "CMakeFiles/raptor_engine.dir/engine.cc.o"
  "CMakeFiles/raptor_engine.dir/engine.cc.o.d"
  "CMakeFiles/raptor_engine.dir/explain.cc.o"
  "CMakeFiles/raptor_engine.dir/explain.cc.o.d"
  "CMakeFiles/raptor_engine.dir/translate.cc.o"
  "CMakeFiles/raptor_engine.dir/translate.cc.o.d"
  "libraptor_engine.a"
  "libraptor_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raptor_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
