
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/engine.cc" "src/engine/CMakeFiles/raptor_engine.dir/engine.cc.o" "gcc" "src/engine/CMakeFiles/raptor_engine.dir/engine.cc.o.d"
  "/root/repo/src/engine/explain.cc" "src/engine/CMakeFiles/raptor_engine.dir/explain.cc.o" "gcc" "src/engine/CMakeFiles/raptor_engine.dir/explain.cc.o.d"
  "/root/repo/src/engine/translate.cc" "src/engine/CMakeFiles/raptor_engine.dir/translate.cc.o" "gcc" "src/engine/CMakeFiles/raptor_engine.dir/translate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/raptor_common.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/raptor_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/raptor_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/tbql/CMakeFiles/raptor_tbql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
