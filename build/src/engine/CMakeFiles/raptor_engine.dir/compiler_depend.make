# Empty compiler generated dependencies file for raptor_engine.
# This may be replaced when dependencies are built.
