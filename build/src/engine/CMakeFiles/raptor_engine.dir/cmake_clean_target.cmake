file(REMOVE_RECURSE
  "libraptor_engine.a"
)
