file(REMOVE_RECURSE
  "CMakeFiles/raptor_common.dir/json.cc.o"
  "CMakeFiles/raptor_common.dir/json.cc.o.d"
  "CMakeFiles/raptor_common.dir/status.cc.o"
  "CMakeFiles/raptor_common.dir/status.cc.o.d"
  "CMakeFiles/raptor_common.dir/strings.cc.o"
  "CMakeFiles/raptor_common.dir/strings.cc.o.d"
  "libraptor_common.a"
  "libraptor_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raptor_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
