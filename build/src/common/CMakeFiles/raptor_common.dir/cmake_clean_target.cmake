file(REMOVE_RECURSE
  "libraptor_common.a"
)
