# Empty dependencies file for raptor_common.
# This may be replaced when dependencies are built.
