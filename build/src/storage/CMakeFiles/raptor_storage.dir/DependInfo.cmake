
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/graph/dependency.cc" "src/storage/CMakeFiles/raptor_storage.dir/graph/dependency.cc.o" "gcc" "src/storage/CMakeFiles/raptor_storage.dir/graph/dependency.cc.o.d"
  "/root/repo/src/storage/graph/graph_store.cc" "src/storage/CMakeFiles/raptor_storage.dir/graph/graph_store.cc.o" "gcc" "src/storage/CMakeFiles/raptor_storage.dir/graph/graph_store.cc.o.d"
  "/root/repo/src/storage/persist/snapshot.cc" "src/storage/CMakeFiles/raptor_storage.dir/persist/snapshot.cc.o" "gcc" "src/storage/CMakeFiles/raptor_storage.dir/persist/snapshot.cc.o.d"
  "/root/repo/src/storage/relational/database.cc" "src/storage/CMakeFiles/raptor_storage.dir/relational/database.cc.o" "gcc" "src/storage/CMakeFiles/raptor_storage.dir/relational/database.cc.o.d"
  "/root/repo/src/storage/relational/predicate.cc" "src/storage/CMakeFiles/raptor_storage.dir/relational/predicate.cc.o" "gcc" "src/storage/CMakeFiles/raptor_storage.dir/relational/predicate.cc.o.d"
  "/root/repo/src/storage/relational/table.cc" "src/storage/CMakeFiles/raptor_storage.dir/relational/table.cc.o" "gcc" "src/storage/CMakeFiles/raptor_storage.dir/relational/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/raptor_common.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/raptor_audit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
