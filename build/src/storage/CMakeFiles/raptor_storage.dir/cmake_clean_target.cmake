file(REMOVE_RECURSE
  "libraptor_storage.a"
)
