# Empty compiler generated dependencies file for raptor_storage.
# This may be replaced when dependencies are built.
