file(REMOVE_RECURSE
  "CMakeFiles/raptor_storage.dir/graph/dependency.cc.o"
  "CMakeFiles/raptor_storage.dir/graph/dependency.cc.o.d"
  "CMakeFiles/raptor_storage.dir/graph/graph_store.cc.o"
  "CMakeFiles/raptor_storage.dir/graph/graph_store.cc.o.d"
  "CMakeFiles/raptor_storage.dir/persist/snapshot.cc.o"
  "CMakeFiles/raptor_storage.dir/persist/snapshot.cc.o.d"
  "CMakeFiles/raptor_storage.dir/relational/database.cc.o"
  "CMakeFiles/raptor_storage.dir/relational/database.cc.o.d"
  "CMakeFiles/raptor_storage.dir/relational/predicate.cc.o"
  "CMakeFiles/raptor_storage.dir/relational/predicate.cc.o.d"
  "CMakeFiles/raptor_storage.dir/relational/table.cc.o"
  "CMakeFiles/raptor_storage.dir/relational/table.cc.o.d"
  "libraptor_storage.a"
  "libraptor_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raptor_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
