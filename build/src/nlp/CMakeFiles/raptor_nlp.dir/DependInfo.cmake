
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/behavior_graph.cc" "src/nlp/CMakeFiles/raptor_nlp.dir/behavior_graph.cc.o" "gcc" "src/nlp/CMakeFiles/raptor_nlp.dir/behavior_graph.cc.o.d"
  "/root/repo/src/nlp/dep_parser.cc" "src/nlp/CMakeFiles/raptor_nlp.dir/dep_parser.cc.o" "gcc" "src/nlp/CMakeFiles/raptor_nlp.dir/dep_parser.cc.o.d"
  "/root/repo/src/nlp/dep_tree.cc" "src/nlp/CMakeFiles/raptor_nlp.dir/dep_tree.cc.o" "gcc" "src/nlp/CMakeFiles/raptor_nlp.dir/dep_tree.cc.o.d"
  "/root/repo/src/nlp/embeddings.cc" "src/nlp/CMakeFiles/raptor_nlp.dir/embeddings.cc.o" "gcc" "src/nlp/CMakeFiles/raptor_nlp.dir/embeddings.cc.o.d"
  "/root/repo/src/nlp/ioc.cc" "src/nlp/CMakeFiles/raptor_nlp.dir/ioc.cc.o" "gcc" "src/nlp/CMakeFiles/raptor_nlp.dir/ioc.cc.o.d"
  "/root/repo/src/nlp/lexicon.cc" "src/nlp/CMakeFiles/raptor_nlp.dir/lexicon.cc.o" "gcc" "src/nlp/CMakeFiles/raptor_nlp.dir/lexicon.cc.o.d"
  "/root/repo/src/nlp/pipeline.cc" "src/nlp/CMakeFiles/raptor_nlp.dir/pipeline.cc.o" "gcc" "src/nlp/CMakeFiles/raptor_nlp.dir/pipeline.cc.o.d"
  "/root/repo/src/nlp/pos_tagger.cc" "src/nlp/CMakeFiles/raptor_nlp.dir/pos_tagger.cc.o" "gcc" "src/nlp/CMakeFiles/raptor_nlp.dir/pos_tagger.cc.o.d"
  "/root/repo/src/nlp/report_gen.cc" "src/nlp/CMakeFiles/raptor_nlp.dir/report_gen.cc.o" "gcc" "src/nlp/CMakeFiles/raptor_nlp.dir/report_gen.cc.o.d"
  "/root/repo/src/nlp/segmenter.cc" "src/nlp/CMakeFiles/raptor_nlp.dir/segmenter.cc.o" "gcc" "src/nlp/CMakeFiles/raptor_nlp.dir/segmenter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/raptor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
