file(REMOVE_RECURSE
  "libraptor_nlp.a"
)
