file(REMOVE_RECURSE
  "CMakeFiles/raptor_nlp.dir/behavior_graph.cc.o"
  "CMakeFiles/raptor_nlp.dir/behavior_graph.cc.o.d"
  "CMakeFiles/raptor_nlp.dir/dep_parser.cc.o"
  "CMakeFiles/raptor_nlp.dir/dep_parser.cc.o.d"
  "CMakeFiles/raptor_nlp.dir/dep_tree.cc.o"
  "CMakeFiles/raptor_nlp.dir/dep_tree.cc.o.d"
  "CMakeFiles/raptor_nlp.dir/embeddings.cc.o"
  "CMakeFiles/raptor_nlp.dir/embeddings.cc.o.d"
  "CMakeFiles/raptor_nlp.dir/ioc.cc.o"
  "CMakeFiles/raptor_nlp.dir/ioc.cc.o.d"
  "CMakeFiles/raptor_nlp.dir/lexicon.cc.o"
  "CMakeFiles/raptor_nlp.dir/lexicon.cc.o.d"
  "CMakeFiles/raptor_nlp.dir/pipeline.cc.o"
  "CMakeFiles/raptor_nlp.dir/pipeline.cc.o.d"
  "CMakeFiles/raptor_nlp.dir/pos_tagger.cc.o"
  "CMakeFiles/raptor_nlp.dir/pos_tagger.cc.o.d"
  "CMakeFiles/raptor_nlp.dir/report_gen.cc.o"
  "CMakeFiles/raptor_nlp.dir/report_gen.cc.o.d"
  "CMakeFiles/raptor_nlp.dir/segmenter.cc.o"
  "CMakeFiles/raptor_nlp.dir/segmenter.cc.o.d"
  "libraptor_nlp.a"
  "libraptor_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raptor_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
