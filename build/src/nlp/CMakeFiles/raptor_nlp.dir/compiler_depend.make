# Empty compiler generated dependencies file for raptor_nlp.
# This may be replaced when dependencies are built.
