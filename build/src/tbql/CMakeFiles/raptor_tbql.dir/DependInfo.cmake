
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tbql/analyzer.cc" "src/tbql/CMakeFiles/raptor_tbql.dir/analyzer.cc.o" "gcc" "src/tbql/CMakeFiles/raptor_tbql.dir/analyzer.cc.o.d"
  "/root/repo/src/tbql/lexer.cc" "src/tbql/CMakeFiles/raptor_tbql.dir/lexer.cc.o" "gcc" "src/tbql/CMakeFiles/raptor_tbql.dir/lexer.cc.o.d"
  "/root/repo/src/tbql/parser.cc" "src/tbql/CMakeFiles/raptor_tbql.dir/parser.cc.o" "gcc" "src/tbql/CMakeFiles/raptor_tbql.dir/parser.cc.o.d"
  "/root/repo/src/tbql/printer.cc" "src/tbql/CMakeFiles/raptor_tbql.dir/printer.cc.o" "gcc" "src/tbql/CMakeFiles/raptor_tbql.dir/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/raptor_common.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/raptor_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/raptor_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
