file(REMOVE_RECURSE
  "CMakeFiles/raptor_tbql.dir/analyzer.cc.o"
  "CMakeFiles/raptor_tbql.dir/analyzer.cc.o.d"
  "CMakeFiles/raptor_tbql.dir/lexer.cc.o"
  "CMakeFiles/raptor_tbql.dir/lexer.cc.o.d"
  "CMakeFiles/raptor_tbql.dir/parser.cc.o"
  "CMakeFiles/raptor_tbql.dir/parser.cc.o.d"
  "CMakeFiles/raptor_tbql.dir/printer.cc.o"
  "CMakeFiles/raptor_tbql.dir/printer.cc.o.d"
  "libraptor_tbql.a"
  "libraptor_tbql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raptor_tbql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
