file(REMOVE_RECURSE
  "libraptor_tbql.a"
)
