# Empty compiler generated dependencies file for raptor_tbql.
# This may be replaced when dependencies are built.
