# Empty dependencies file for raptor_synthesis.
# This may be replaced when dependencies are built.
