file(REMOVE_RECURSE
  "libraptor_synthesis.a"
)
