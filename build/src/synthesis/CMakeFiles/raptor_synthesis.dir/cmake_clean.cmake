file(REMOVE_RECURSE
  "CMakeFiles/raptor_synthesis.dir/rules.cc.o"
  "CMakeFiles/raptor_synthesis.dir/rules.cc.o.d"
  "CMakeFiles/raptor_synthesis.dir/synthesizer.cc.o"
  "CMakeFiles/raptor_synthesis.dir/synthesizer.cc.o.d"
  "libraptor_synthesis.a"
  "libraptor_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raptor_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
