# Empty dependencies file for raptor_audit.
# This may be replaced when dependencies are built.
