
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audit/cpr.cc" "src/audit/CMakeFiles/raptor_audit.dir/cpr.cc.o" "gcc" "src/audit/CMakeFiles/raptor_audit.dir/cpr.cc.o.d"
  "/root/repo/src/audit/generator.cc" "src/audit/CMakeFiles/raptor_audit.dir/generator.cc.o" "gcc" "src/audit/CMakeFiles/raptor_audit.dir/generator.cc.o.d"
  "/root/repo/src/audit/log.cc" "src/audit/CMakeFiles/raptor_audit.dir/log.cc.o" "gcc" "src/audit/CMakeFiles/raptor_audit.dir/log.cc.o.d"
  "/root/repo/src/audit/parser.cc" "src/audit/CMakeFiles/raptor_audit.dir/parser.cc.o" "gcc" "src/audit/CMakeFiles/raptor_audit.dir/parser.cc.o.d"
  "/root/repo/src/audit/sysdig_parser.cc" "src/audit/CMakeFiles/raptor_audit.dir/sysdig_parser.cc.o" "gcc" "src/audit/CMakeFiles/raptor_audit.dir/sysdig_parser.cc.o.d"
  "/root/repo/src/audit/types.cc" "src/audit/CMakeFiles/raptor_audit.dir/types.cc.o" "gcc" "src/audit/CMakeFiles/raptor_audit.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/raptor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
