file(REMOVE_RECURSE
  "CMakeFiles/raptor_audit.dir/cpr.cc.o"
  "CMakeFiles/raptor_audit.dir/cpr.cc.o.d"
  "CMakeFiles/raptor_audit.dir/generator.cc.o"
  "CMakeFiles/raptor_audit.dir/generator.cc.o.d"
  "CMakeFiles/raptor_audit.dir/log.cc.o"
  "CMakeFiles/raptor_audit.dir/log.cc.o.d"
  "CMakeFiles/raptor_audit.dir/parser.cc.o"
  "CMakeFiles/raptor_audit.dir/parser.cc.o.d"
  "CMakeFiles/raptor_audit.dir/sysdig_parser.cc.o"
  "CMakeFiles/raptor_audit.dir/sysdig_parser.cc.o.d"
  "CMakeFiles/raptor_audit.dir/types.cc.o"
  "CMakeFiles/raptor_audit.dir/types.cc.o.d"
  "libraptor_audit.a"
  "libraptor_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raptor_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
