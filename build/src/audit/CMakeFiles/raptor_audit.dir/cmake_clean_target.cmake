file(REMOVE_RECURSE
  "libraptor_audit.a"
)
