file(REMOVE_RECURSE
  "libraptor_core.a"
)
