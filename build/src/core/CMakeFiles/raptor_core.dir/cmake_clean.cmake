file(REMOVE_RECURSE
  "CMakeFiles/raptor_core.dir/investigate.cc.o"
  "CMakeFiles/raptor_core.dir/investigate.cc.o.d"
  "CMakeFiles/raptor_core.dir/threat_raptor.cc.o"
  "CMakeFiles/raptor_core.dir/threat_raptor.cc.o.d"
  "libraptor_core.a"
  "libraptor_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raptor_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
