# Empty compiler generated dependencies file for raptor_core.
# This may be replaced when dependencies are built.
