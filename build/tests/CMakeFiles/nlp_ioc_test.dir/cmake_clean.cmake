file(REMOVE_RECURSE
  "CMakeFiles/nlp_ioc_test.dir/nlp_ioc_test.cc.o"
  "CMakeFiles/nlp_ioc_test.dir/nlp_ioc_test.cc.o.d"
  "nlp_ioc_test"
  "nlp_ioc_test.pdb"
  "nlp_ioc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_ioc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
