# Empty dependencies file for nlp_ioc_test.
# This may be replaced when dependencies are built.
