# Empty compiler generated dependencies file for cpr_test.
# This may be replaced when dependencies are built.
