file(REMOVE_RECURSE
  "CMakeFiles/cpr_test.dir/cpr_test.cc.o"
  "CMakeFiles/cpr_test.dir/cpr_test.cc.o.d"
  "cpr_test"
  "cpr_test.pdb"
  "cpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
