file(REMOVE_RECURSE
  "CMakeFiles/tbql_test.dir/tbql_test.cc.o"
  "CMakeFiles/tbql_test.dir/tbql_test.cc.o.d"
  "tbql_test"
  "tbql_test.pdb"
  "tbql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
