# Empty compiler generated dependencies file for tbql_test.
# This may be replaced when dependencies are built.
