file(REMOVE_RECURSE
  "CMakeFiles/nlp_report_gen_test.dir/nlp_report_gen_test.cc.o"
  "CMakeFiles/nlp_report_gen_test.dir/nlp_report_gen_test.cc.o.d"
  "nlp_report_gen_test"
  "nlp_report_gen_test.pdb"
  "nlp_report_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_report_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
