# Empty compiler generated dependencies file for nlp_report_gen_test.
# This may be replaced when dependencies are built.
