# Empty dependencies file for sysdig_parser_test.
# This may be replaced when dependencies are built.
