file(REMOVE_RECURSE
  "CMakeFiles/sysdig_parser_test.dir/sysdig_parser_test.cc.o"
  "CMakeFiles/sysdig_parser_test.dir/sysdig_parser_test.cc.o.d"
  "sysdig_parser_test"
  "sysdig_parser_test.pdb"
  "sysdig_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysdig_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
