file(REMOVE_RECURSE
  "CMakeFiles/nlp_parser_test.dir/nlp_parser_test.cc.o"
  "CMakeFiles/nlp_parser_test.dir/nlp_parser_test.cc.o.d"
  "nlp_parser_test"
  "nlp_parser_test.pdb"
  "nlp_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
