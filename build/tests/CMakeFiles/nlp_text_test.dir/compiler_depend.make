# Empty compiler generated dependencies file for nlp_text_test.
# This may be replaced when dependencies are built.
