file(REMOVE_RECURSE
  "CMakeFiles/nlp_text_test.dir/nlp_text_test.cc.o"
  "CMakeFiles/nlp_text_test.dir/nlp_text_test.cc.o.d"
  "nlp_text_test"
  "nlp_text_test.pdb"
  "nlp_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
