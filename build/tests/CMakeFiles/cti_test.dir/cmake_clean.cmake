file(REMOVE_RECURSE
  "CMakeFiles/cti_test.dir/cti_test.cc.o"
  "CMakeFiles/cti_test.dir/cti_test.cc.o.d"
  "cti_test"
  "cti_test.pdb"
  "cti_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cti_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
