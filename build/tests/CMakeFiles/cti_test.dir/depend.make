# Empty dependencies file for cti_test.
# This may be replaced when dependencies are built.
