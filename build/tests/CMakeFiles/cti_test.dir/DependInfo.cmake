
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cti_test.cc" "tests/CMakeFiles/cti_test.dir/cti_test.cc.o" "gcc" "tests/CMakeFiles/cti_test.dir/cti_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cti/CMakeFiles/raptor_cti.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/raptor_server.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/raptor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/raptor_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/synthesis/CMakeFiles/raptor_synthesis.dir/DependInfo.cmake"
  "/root/repo/build/src/tbql/CMakeFiles/raptor_tbql.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/raptor_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/raptor_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/raptor_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/raptor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
