file(REMOVE_RECURSE
  "CMakeFiles/attr_relationship_test.dir/attr_relationship_test.cc.o"
  "CMakeFiles/attr_relationship_test.dir/attr_relationship_test.cc.o.d"
  "attr_relationship_test"
  "attr_relationship_test.pdb"
  "attr_relationship_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attr_relationship_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
