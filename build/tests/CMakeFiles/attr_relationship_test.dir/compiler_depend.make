# Empty compiler generated dependencies file for attr_relationship_test.
# This may be replaced when dependencies are built.
