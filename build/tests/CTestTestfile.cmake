# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/audit_test[1]_include.cmake")
include("/root/repo/build/tests/cpr_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/nlp_ioc_test[1]_include.cmake")
include("/root/repo/build/tests/nlp_text_test[1]_include.cmake")
include("/root/repo/build/tests/nlp_parser_test[1]_include.cmake")
include("/root/repo/build/tests/nlp_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/tbql_test[1]_include.cmake")
include("/root/repo/build/tests/synthesis_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/nlp_report_gen_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/attr_relationship_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/cti_test[1]_include.cmake")
include("/root/repo/build/tests/sysdig_parser_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/dependency_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
