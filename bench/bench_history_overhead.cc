// Metrics-history overhead (ISSUE 10 acceptance): with the history
// collector sampling the full registry at the default 1 s interval,
// end-to-end hunt latency must stay within 5% of the collector-off wall
// time.
//
// Two levels:
//   (a) micro: cost of one collector tick (snapshot the registry, delta-
//       append every series) and of answering one /api/metrics/range-style
//       query over a populated store.
//   (b) macro: the full hunt pipeline (extract -> synthesize -> execute on
//       a 50k-event trace) with the collector stopped vs running at 1 Hz.
//
// After the google-benchmark run, main() re-measures both macro arms
// interleaved and exits non-zero when the median overhead exceeds 5% —
// scripts/bench.sh runs every bench binary under `set -e`, so CI fails on
// a collector that got expensive, independent of the bench_compare.py
// baseline diff (which additionally gates the recorded arm times).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/threat_raptor.h"
#include "obs/clock.h"
#include "obs/history.h"

namespace raptor::bench {
namespace {

ThreatRaptor& GetSystem() {
  static auto* system = [] {
    auto s = std::make_unique<ThreatRaptor>();
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(25'000, s->mutable_log());
    gen.InjectDataLeakageAttack(s->mutable_log());
    gen.GenerateBenign(25'000, s->mutable_log());
    (void)s->FinalizeStorage();
    return s.release();
  }();
  return *system;
}

const std::string& GetReport() {
  static auto* report = [] {
    ThreatRaptor scratch;
    audit::WorkloadGenerator gen;
    return new std::string(
        gen.InjectDataLeakageAttack(scratch.mutable_log()).report_text);
  }();
  return *report;
}

void SetCollector(bool on) {
  obs::MetricsHistory& history = obs::MetricsHistory::Default();
  if (on) {
    history.Configure(obs::HistoryOptions{});  // defaults: 1 s, three tiers
    history.Start();
  } else {
    history.Stop();
  }
}

// --- (a) Micro: one collector tick / one range query. ---

void BM_CollectTick(benchmark::State& state) {
  GetSystem();  // Populate the registry with the full pipeline catalog.
  auto clock = std::make_shared<obs::ManualClock>();
  obs::MetricsHistory history;
  obs::HistoryOptions options;
  options.clock = clock;
  history.Configure(options);
  for (auto _ : state) {
    clock->AdvanceSeconds(1);
    history.CollectNow();
    benchmark::DoNotOptimize(history.Ticks());
  }
  state.counters["series"] = static_cast<double>(history.SeriesCount());
}

void BM_RangeQuery(benchmark::State& state) {
  GetSystem();
  auto clock = std::make_shared<obs::ManualClock>();
  obs::MetricsHistory history;
  obs::HistoryOptions options;
  options.clock = clock;
  history.Configure(options);
  // Ten minutes of 1 Hz samples to scan.
  for (int i = 0; i < 600; ++i) {
    clock->AdvanceSeconds(1);
    history.CollectNow();
  }
  obs::RangeRequest request;
  request.name = "raptor_hunt_ms";
  request.agg = obs::RangeAgg::kP99;
  request.start_ms = clock->NowUnixMs() - 600'000;
  request.end_ms = clock->NowUnixMs();
  request.step_ms = 10'000;
  for (auto _ : state) {
    obs::RangeResult result = history.Range(request);
    benchmark::DoNotOptimize(result.series.size());
  }
}

// --- (b) Macro: full hunts, collector off vs 1 Hz. ---

void BM_Hunt(benchmark::State& state, bool collector_on) {
  ThreatRaptor& system = GetSystem();
  const std::string& report = GetReport();
  SetCollector(collector_on);
  for (auto _ : state) {
    auto hunt = system.Hunt(report);
    if (!hunt.ok()) std::abort();
    benchmark::DoNotOptimize(hunt->result.rows.size());
  }
  SetCollector(false);
}

/// Median hunt wall time (ms) over `reps` hunts with the collector off/on.
double MedianHuntMs(bool collector_on, int reps) {
  ThreatRaptor& system = GetSystem();
  const std::string& report = GetReport();
  SetCollector(collector_on);
  std::vector<double> ms;
  ms.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto hunt = system.Hunt(report);
    auto t1 = std::chrono::steady_clock::now();
    if (!hunt.ok()) std::abort();
    ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  SetCollector(false);
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

/// The <5% overhead gate. Interleaving the arms (off, on, off, on ...)
/// cancels machine-load drift; the median cancels outliers.
bool OverheadWithinBound(int reps, double* off_out, double* on_out) {
  double off = MedianHuntMs(false, reps);
  double on = MedianHuntMs(true, reps);
  *off_out = off;
  *on_out = on;
  return on <= off * 1.05;
}

}  // namespace
}  // namespace raptor::bench

int main(int argc, char** argv) {
  using raptor::bench::BM_CollectTick;
  using raptor::bench::BM_Hunt;
  using raptor::bench::BM_RangeQuery;

  benchmark::RegisterBenchmark("history/collect_tick", BM_CollectTick)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("history/range_query_p99", BM_RangeQuery)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "history/hunt/off",
      [](benchmark::State& s) { BM_Hunt(s, false); })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "history/hunt/1hz",
      [](benchmark::State& s) { BM_Hunt(s, true); })
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // The acceptance gate (stderr keeps --benchmark_format=json parseable).
  double off = 0;
  double on = 0;
  bool ok = raptor::bench::OverheadWithinBound(21, &off, &on);
  if (!ok) {
    // One retry with more reps: a single gate run shares the machine with
    // whatever CI neighbors exist, and the bound is meant to catch a
    // collector that got expensive, not scheduler noise.
    ok = raptor::bench::OverheadWithinBound(41, &off, &on);
  }
  std::fprintf(stderr,
               "history overhead gate: off=%.3f ms, 1hz=%.3f ms (%+.1f%%, "
               "bound +5%%): %s\n",
               off, on, (on / off - 1) * 100, ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
