// Experiment E1 (DESIGN.md): threat behavior extraction accuracy.
//
// Reproduces the full paper's extraction-accuracy table: micro-averaged
// precision/recall/F1 of IOC extraction and IOC-relation extraction over
// the labeled CTI corpus, for the full pipeline and its ablations:
//   full            — the THREATRAPTOR pipeline (Algorithm 1)
//   no-protection   — IOC protection disabled (the paper's key baseline:
//                     general NLP applied directly to raw OSCTI text)
//   no-coref        — coreference resolution disabled
//   no-merge        — IOC scan & merge disabled
//   regex-only      — IOC regexes alone (structured-feed strawman: finds
//                     indicators, extracts no relations)
//
// Expected shape: full ≫ no-protection on both IOC and relation F1;
// regex-only has high IOC precision but zero relation recall.

#include <cstdio>

#include "bench_util.h"
#include "corpus.h"
#include "nlp/pipeline.h"
#include "nlp/report_gen.h"

namespace raptor::bench {
namespace {

struct Config {
  const char* name;
  nlp::PipelineOptions options;
  bool regex_only = false;
};

void Run() {
  std::vector<Config> configs;
  configs.push_back({"full", {}, false});
  {
    nlp::PipelineOptions o;
    o.enable_ioc_protection = false;
    configs.push_back({"no-protection", o, false});
  }
  {
    nlp::PipelineOptions o;
    o.enable_coreference = false;
    configs.push_back({"no-coref", o, false});
  }
  {
    nlp::PipelineOptions o;
    o.enable_ioc_merge = false;
    configs.push_back({"no-merge", o, false});
  }
  configs.push_back({"regex-only", {}, true});

  std::vector<CorpusDoc> corpus = BuildCorpus();
  Narrate("E1: Threat behavior extraction accuracy "
          "(%zu labeled corpus documents)\n",
          corpus.size());
  Table table("labeled_corpus", {"pipeline", "ioc_p", "ioc_r", "ioc_f1",
                                 "rel_p", "rel_r", "rel_f1"});

  nlp::IocRecognizer recognizer;
  for (const Config& config : configs) {
    PrCounter ioc_counter, rel_counter;
    nlp::ExtractionPipeline pipeline(config.options);
    for (const CorpusDoc& doc : corpus) {
      std::set<std::string> truth_iocs(doc.iocs.begin(), doc.iocs.end());
      std::set<std::string> truth_rels;
      for (const LabeledRelation& r : doc.relations) {
        truth_rels.insert(r.subject + "|" + r.verb + "|" + r.object);
      }

      std::set<std::string> got_iocs, got_rels;
      if (config.regex_only) {
        for (const nlp::IocSpan& s : recognizer.Recognize(doc.text)) {
          got_iocs.insert(s.text);
        }
      } else {
        nlp::ExtractionResult result = pipeline.Extract(doc.text);
        got_iocs = ExtractedIocs(result);
        got_rels = ExtractedRelations(result);
      }
      ioc_counter.Score(got_iocs, truth_iocs);
      rel_counter.Score(got_rels, truth_rels);
    }
    table.AddRow({config.name, Cell(ioc_counter.Precision(), 3),
                  Cell(ioc_counter.Recall(), 3), Cell(ioc_counter.F1(), 3),
                  Cell(rel_counter.Precision(), 3),
                  Cell(rel_counter.Recall(), 3), Cell(rel_counter.F1(), 3)});
  }
  table.Done();
  Narrate(
      "Shape check: 'full' should dominate 'no-protection' on both F1s;\n"
      "'regex-only' finds indicators but extracts no relations.\n");
}

/// Second table: a larger generated corpus (template-rendered attack
/// scripts with verb synonyms, passive voice, pronouns, and distractor
/// sentences) stresses the pipeline beyond the hand-labeled documents.
void RunGenerated() {
  constexpr size_t kNumDocs = 100;
  Narrate("\nE1b: Extraction accuracy on the generated corpus "
          "(%zu rendered attack reports)\n",
          kNumDocs);
  Table table("generated_corpus", {"pipeline", "ioc_p", "ioc_r", "ioc_f1",
                                   "rel_p", "rel_r", "rel_f1"});

  struct Config {
    const char* name;
    nlp::PipelineOptions options;
  };
  std::vector<Config> configs;
  configs.push_back({"full", {}});
  {
    nlp::PipelineOptions o;
    o.enable_ioc_protection = false;
    configs.push_back({"no-protection", o});
  }
  {
    nlp::PipelineOptions o;
    o.enable_coreference = false;
    configs.push_back({"no-coref", o});
  }

  // Pre-render the documents once (generation is deterministic).
  nlp::ReportGenerator generator;
  std::vector<nlp::GeneratedReport> docs;
  for (size_t d = 0; d < kNumDocs; ++d) {
    docs.push_back(generator.Render(generator.RandomScript(4 + d % 8)));
  }

  for (const Config& config : configs) {
    PrCounter ioc_counter, rel_counter;
    nlp::ExtractionPipeline pipeline(config.options);
    for (const nlp::GeneratedReport& doc : docs) {
      std::set<std::string> truth_iocs(doc.iocs.begin(), doc.iocs.end());
      std::set<std::string> truth_rels;
      for (const nlp::GeneratedLabel& r : doc.relations) {
        truth_rels.insert(r.subject + "|" + r.verb + "|" + r.object);
      }
      nlp::ExtractionResult result = pipeline.Extract(doc.text);
      ioc_counter.Score(ExtractedIocs(result), truth_iocs);
      rel_counter.Score(ExtractedRelations(result), truth_rels);
    }
    table.AddRow({config.name, Cell(ioc_counter.Precision(), 3),
                  Cell(ioc_counter.Recall(), 3), Cell(ioc_counter.F1(), 3),
                  Cell(rel_counter.Precision(), 3),
                  Cell(rel_counter.Recall(), 3), Cell(rel_counter.F1(), 3)});
  }
  table.Done();
}

}  // namespace
}  // namespace raptor::bench

int main(int argc, char** argv) {
  raptor::bench::Init(argc, argv, "extraction");
  raptor::bench::Run();
  raptor::bench::RunGenerated();
  raptor::bench::Finish();
  return 0;
}
