// Experiment E4 (DESIGN.md): Causality-Preserved Reduction effectiveness
// (paper §II-B, technique of reference [10]).
//
// Sweeps trace size and syscall burstiness and reports the event-count
// reduction ratio plus reduction throughput. Expected shape: the ratio
// grows with burstiness (the CCS'16 paper reports ~2-8x on real hosts) and
// is roughly size-independent; throughput is linear.

#include <chrono>
#include <cstdio>

#include "audit/cpr.h"
#include "audit/generator.h"
#include "bench_util.h"

namespace raptor::bench {
namespace {

void Run() {
  Narrate("E4: Causality-Preserved Reduction (ref [10])\n");
  Table table("cpr_reduction", {"events", "burst_prob", "evts_before",
                                "evts_after", "reduction_x", "Mevt_per_s"});

  for (size_t events : {10'000u, 100'000u, 400'000u}) {
    for (double burst : {0.0, 0.15, 0.4, 0.7}) {
      audit::GeneratorOptions opts;
      opts.burst_probability = burst;
      opts.burst_max_len = 16;
      audit::AuditLog log;
      audit::WorkloadGenerator gen(opts);
      gen.GenerateBenign(events, &log);
      auto t0 = std::chrono::steady_clock::now();
      audit::CprStats stats = audit::ReduceLog(&log);
      double secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
      table.AddRow({events, burst, stats.events_before, stats.events_after,
                    stats.ReductionRatio(),
                    static_cast<double>(stats.events_before) / secs / 1e6});
    }
  }
  table.Done();
  Narrate(
      "Shape check: reduction grows with burstiness, is roughly\n"
      "size-independent, and throughput stays linear in trace size.\n");
}

}  // namespace
}  // namespace raptor::bench

int main(int argc, char** argv) {
  raptor::bench::Init(argc, argv, "cpr");
  raptor::bench::Run();
  raptor::bench::Finish();
  return 0;
}
