// Built-in labeled OSCTI corpus (substitute for wild threat reports; see
// DESIGN.md "Substitutions").
//
// Each document carries hand-labeled ground truth: the IOCs it mentions and
// the IOC relations it expresses. bench_extraction scores the NLP pipeline
// and its ablations against these labels (experiment E1); bench_synthesis
// uses the same documents to measure synthesis coverage (E7).

#pragma once

#include <string>
#include <vector>

namespace raptor::bench {

struct LabeledRelation {
  std::string subject;
  std::string verb;  ///< Lemmatized relation verb.
  std::string object;
};

struct CorpusDoc {
  std::string name;
  std::string text;
  /// Distinct IOC surface strings the document mentions (post-merge).
  std::vector<std::string> iocs;
  std::vector<LabeledRelation> relations;
};

/// The labeled corpus: the paper's two demo attack narratives, paraphrase
/// and passive-voice variants, a multi-paragraph APT-style report, and
/// distractor documents with no extractable behavior.
inline std::vector<CorpusDoc> BuildCorpus() {
  std::vector<CorpusDoc> corpus;

  corpus.push_back(CorpusDoc{
      "data_leakage",
      "The attacker exploited the Shellshock vulnerability to penetrate "
      "into the victim host. After the penetration, the attacker scanned "
      "the file system for valuable assets. The process /bin/tar read the "
      "file /etc/passwd. /bin/tar then wrote the collected data to "
      "/tmp/data.tar. The process /bin/gzip read /tmp/data.tar and wrote "
      "the compressed archive /tmp/data.tar.gz. Finally, the process "
      "/usr/bin/curl read /tmp/data.tar.gz and sent the archive to the IP "
      "161.35.10.8.",
      {"/bin/tar", "/etc/passwd", "/tmp/data.tar", "/bin/gzip",
       "/tmp/data.tar.gz", "/usr/bin/curl", "161.35.10.8"},
      {{"/bin/tar", "read", "/etc/passwd"},
       {"/bin/tar", "write", "/tmp/data.tar"},
       {"/bin/gzip", "read", "/tmp/data.tar"},
       {"/bin/gzip", "write", "/tmp/data.tar.gz"},
       {"/usr/bin/curl", "read", "/tmp/data.tar.gz"},
       {"/usr/bin/curl", "send", "/tmp/data.tar.gz"},
       {"/usr/bin/curl", "send", "161.35.10.8"}}});

  corpus.push_back(CorpusDoc{
      "password_cracking",
      "The attacker penetrated into the victim host by exploiting the "
      "Shellshock vulnerability. After the penetration, the process "
      "/bin/bash connected to the IP 108.160.172.1 and downloaded the "
      "image /tmp/dropbox_image.jpg. The address of the C2 server was "
      "encoded in the EXIF metadata, and /bin/bash read "
      "/tmp/dropbox_image.jpg. /bin/bash then connected to the IP "
      "161.35.10.8 and downloaded the password cracker /tmp/cracker. The "
      "process /tmp/cracker read the shadow file /etc/shadow and wrote the "
      "cracked passwords to /tmp/crackedpw.txt. Finally, /tmp/cracker sent "
      "the passwords to the IP 161.35.10.8.",
      {"/bin/bash", "108.160.172.1", "/tmp/dropbox_image.jpg", "161.35.10.8",
       "/tmp/cracker", "/etc/shadow", "/tmp/crackedpw.txt"},
      {{"/bin/bash", "connect", "108.160.172.1"},
       {"/bin/bash", "download", "/tmp/dropbox_image.jpg"},
       {"/bin/bash", "read", "/tmp/dropbox_image.jpg"},
       {"/bin/bash", "connect", "161.35.10.8"},
       {"/bin/bash", "download", "/tmp/cracker"},
       {"/tmp/cracker", "read", "/etc/shadow"},
       {"/tmp/cracker", "write", "/tmp/crackedpw.txt"},
       {"/tmp/cracker", "send", "161.35.10.8"}}});

  corpus.push_back(CorpusDoc{
      "leakage_passive_paraphrase",
      "After breaking in, the adversary collected credentials: the file "
      "/etc/passwd was read by /bin/tar. /bin/tar stored the stolen data "
      "in /tmp/data.tar. Later /bin/gzip read /tmp/data.tar and created "
      "/tmp/data.tar.gz. /usr/bin/curl read /tmp/data.tar.gz and "
      "exfiltrated the archive to 161.35.10.8.",
      {"/etc/passwd", "/bin/tar", "/tmp/data.tar", "/bin/gzip",
       "/tmp/data.tar.gz", "/usr/bin/curl", "161.35.10.8"},
      {{"/bin/tar", "read", "/etc/passwd"},
       {"/bin/tar", "store", "/tmp/data.tar"},
       {"/bin/gzip", "read", "/tmp/data.tar"},
       {"/bin/gzip", "create", "/tmp/data.tar.gz"},
       {"/usr/bin/curl", "read", "/tmp/data.tar.gz"},
       {"/usr/bin/curl", "exfiltrate", "/tmp/data.tar.gz"},
       {"/usr/bin/curl", "exfiltrate", "161.35.10.8"}}});

  corpus.push_back(CorpusDoc{
      "dropper_coref",
      "The process /usr/bin/wget downloaded the dropper /tmp/dropper.elf. "
      "It then executed /tmp/dropper.elf. The dropper connected to the IP "
      "45.77.10.3 and received commands.",
      {"/usr/bin/wget", "/tmp/dropper.elf", "45.77.10.3"},
      {{"/usr/bin/wget", "download", "/tmp/dropper.elf"},
       {"/usr/bin/wget", "execute", "/tmp/dropper.elf"},
       {"/tmp/dropper.elf", "connect", "45.77.10.3"}}});

  corpus.push_back(CorpusDoc{
      "apt_multiblock",
      "# APT-77 intrusion summary\n"
      "\n"
      "The implant /opt/svc/updaterd read the file /etc/hosts and "
      "connected to the IP 203.0.113.9. It downloaded the module "
      "/tmp/mod_keylog.so from the C2 server.\n"
      "\n"
      "In the second stage, the process /tmp/mod_keylog.so read "
      "/home/admin/.ssh/id_rsa and sent the key to the IP 203.0.113.9.\n",
      {"/opt/svc/updaterd", "/etc/hosts", "203.0.113.9", "/tmp/mod_keylog.so",
       "/home/admin/.ssh/id_rsa"},
      {{"/opt/svc/updaterd", "read", "/etc/hosts"},
       {"/opt/svc/updaterd", "connect", "203.0.113.9"},
       {"/opt/svc/updaterd", "download", "/tmp/mod_keylog.so"},
       // "downloaded the module from the C2 server" also expresses a
       // download-from relation against the C2 address.
       {"/opt/svc/updaterd", "download", "203.0.113.9"},
       {"/tmp/mod_keylog.so", "read", "/home/admin/.ssh/id_rsa"},
       {"/tmp/mod_keylog.so", "send", "203.0.113.9"}}});

  corpus.push_back(CorpusDoc{
      "ransomware_note",
      "The ransomware binary /tmp/locker deleted the file "
      "/var/backups/db.bak and wrote the ransom note /home/user/README.txt. "
      "The process /tmp/locker encrypted /home/user/documents.db.",
      {"/tmp/locker", "/var/backups/db.bak", "/home/user/README.txt",
       "/home/user/documents.db"},
      {{"/tmp/locker", "delete", "/var/backups/db.bak"},
       {"/tmp/locker", "write", "/home/user/README.txt"},
       {"/tmp/locker", "encrypt", "/home/user/documents.db"}}});

  corpus.push_back(CorpusDoc{
      "persistence_passive_chain",
      "The script /tmp/boot.sh was executed by /bin/sh. It wrote the file "
      "/etc/cron.d/evil and connected to the IP 198.18.0.9.",
      {"/tmp/boot.sh", "/bin/sh", "/etc/cron.d/evil", "198.18.0.9"},
      // "It" corefers to the script, which acts once running.
      {{"/bin/sh", "execute", "/tmp/boot.sh"},
       {"/tmp/boot.sh", "write", "/etc/cron.d/evil"},
       {"/tmp/boot.sh", "connect", "198.18.0.9"}}});

  corpus.push_back(CorpusDoc{
      "credential_list_sweep",
      "The implant /opt/svc/agent read /etc/passwd, /etc/shadow, and "
      "/etc/group. It sent the data to the IP 198.18.0.9.",
      {"/opt/svc/agent", "/etc/passwd", "/etc/shadow", "/etc/group",
       "198.18.0.9"},
      {{"/opt/svc/agent", "read", "/etc/passwd"},
       {"/opt/svc/agent", "read", "/etc/shadow"},
       {"/opt/svc/agent", "read", "/etc/group"},
       {"/opt/svc/agent", "send", "198.18.0.9"}}});

  corpus.push_back(CorpusDoc{
      "distractor_advisory",
      "Organizations are advised to apply patches promptly and to enforce "
      "the principle of least privilege. Network segmentation and regular "
      "backups substantially reduce the impact of intrusions.",
      {},
      {}});

  corpus.push_back(CorpusDoc{
      "distractor_iocs_only",
      "The following indicators were observed: 198.51.100.77, "
      "/tmp/implant.bin, and update-cdn.example.com.",
      {"198.51.100.77", "/tmp/implant.bin", "update-cdn.example.com"},
      {}});

  return corpus;
}

}  // namespace raptor::bench
