// Experiment E9 (DESIGN.md): storage ingestion and the CPR ablation.
//
// Part (a): load throughput of each storage stage — text parsing, CPR,
// relational load (with index maintenance), graph construction — across
// trace sizes.
// Part (b): the CPR design-choice ablation the paper motivates in §II-B —
// how much storage and query work the reduction saves downstream, and that
// it never changes hunt results.
// Part (c): the parallel ingestion scaling sweep — text parsing and the CPR
// sort at num_threads 1/2/4/hardware on a 100k-event trace. Both paths are
// byte-identical to serial at any thread count (tests/parallel_test.cc);
// this table records the wall-time win.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/threat_raptor.h"

namespace raptor::bench {
namespace {

double Secs(std::chrono::steady_clock::time_point a,
            std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

void LoadThroughput() {
  Narrate("E9a: Storage load throughput (Mevents/s per stage)\n");
  Table table("load_throughput", {"events", "parse_text", "cpr", "relational",
                                  "graph", "end_to_end"});
  for (size_t events : {20'000u, 100'000u, 400'000u}) {
    audit::AuditLog gen_log;
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(events, &gen_log);
    std::string text;
    for (const auto& ev : gen_log.events()) {
      text += audit::LogParser::FormatEvent(gen_log, ev) + "\n";
    }

    auto now = std::chrono::steady_clock::now;
    auto t0 = now();
    audit::AuditLog log;
    (void)audit::LogParser::ParseText(text, &log);
    auto t1 = now();
    audit::CprStats cpr = audit::ReduceLog(&log);
    auto t2 = now();
    rel::RelationalDatabase rel_db;
    rel_db.Load(log);
    auto t3 = now();
    graph::GraphStore graph_db(log);
    auto t4 = now();
    (void)cpr;

    double mevents = static_cast<double>(events) / 1e6;
    table.AddRow({events, mevents / Secs(t0, t1), mevents / Secs(t1, t2),
                  mevents / Secs(t2, t3), mevents / Secs(t3, t4),
                  mevents / Secs(t0, t4)});
  }
  table.Done();
}

void CprAblation() {
  Narrate("\nE9b: CPR design-choice ablation (200k-event trace)\n");
  Table table("cpr_ablation", {"cpr", "event_rows", "entity_rows",
                               "graph_edges", "hunt_ms", "rows_same"});

  std::vector<std::vector<std::string>> reference_rows;
  for (bool use_cpr : {true, false}) {
    ThreatRaptorOptions opts;
    opts.apply_cpr = use_cpr;
    ThreatRaptor system(opts);
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(100'000, system.mutable_log());
    auto attack = gen.InjectDataLeakageAttack(system.mutable_log());
    gen.GenerateBenign(100'000, system.mutable_log());
    (void)system.FinalizeStorage();

    auto t0 = std::chrono::steady_clock::now();
    auto hunt = system.Hunt(attack.report_text);
    double hunt_ms =
        1000.0 * Secs(t0, std::chrono::steady_clock::now());
    if (!hunt.ok()) {
      Narrate("hunt failed: %s\n", hunt.status().ToString().c_str());
      return;
    }
    bool same = true;
    if (use_cpr) {
      reference_rows = hunt->result.rows;
    } else {
      same = hunt->result.rows == reference_rows;
    }
    table.AddRow({use_cpr ? "on" : "off",
                  system.relational().events().num_rows(),
                  system.log().entity_count(), system.graph().num_edges(),
                  hunt_ms, use_cpr ? "(ref)" : (same ? "YES" : "NO")});
  }
  table.Done();
  Narrate(
      "Shape check: CPR shrinks event storage ~1.5-2x on this workload at\n"
      "identical hunt results; bursty hosts (see E4) save far more.\n");
}

/// Thread counts for the scaling sweep: 1, 2, 4 and the hardware count,
/// deduplicated in order (on small machines several coincide).
std::vector<size_t> ThreadSweep() {
  std::vector<size_t> sweep;
  for (size_t t : {size_t{1}, size_t{2}, size_t{4},
                   ThreadPool::HardwareThreads()}) {
    if (std::find(sweep.begin(), sweep.end(), t) == sweep.end()) {
      sweep.push_back(t);
    }
  }
  return sweep;
}

void ParallelScaling() {
  Narrate("\nE9c: parallel ingestion scaling (100k-event trace)\n");
  Table table("parallel_scaling",
              {"stage", "threads", "ms", "speedup", "mevents_per_s"});
  const size_t events = 100'000;
  audit::AuditLog gen_log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(events, &gen_log);
  std::string text;
  for (const auto& ev : gen_log.events()) {
    text += audit::LogParser::FormatEvent(gen_log, ev) + "\n";
  }

  auto now = std::chrono::steady_clock::now;
  double parse_base = 0;
  for (size_t threads : ThreadSweep()) {
    audit::ParseOptions opts;
    opts.num_threads = threads;
    double best_ms = 1e300;
    for (int rep = 0; rep < 2; ++rep) {
      audit::AuditLog log;
      auto t0 = now();
      auto stats = audit::LogParser::ParseText(text, &log, opts);
      double ms = 1000.0 * Secs(t0, now());
      if (!stats.ok()) {
        Narrate("parse failed: %s\n", stats.status().ToString().c_str());
        return;
      }
      best_ms = std::min(best_ms, ms);
    }
    if (threads == 1) parse_base = best_ms;
    table.AddRow({"parse_text", threads, Cell(best_ms, 3),
                  Cell(parse_base / std::max(best_ms, 1e-9), 2),
                  Cell(events / 1e6 / (best_ms / 1000.0), 2)});
  }

  double cpr_base = 0;
  for (size_t threads : ThreadSweep()) {
    audit::CprOptions opts;
    opts.num_threads = threads;
    double best_ms = 1e300;
    for (int rep = 0; rep < 2; ++rep) {
      // CPR mutates the log in place, so each rep sorts a fresh parse.
      audit::AuditLog log;
      (void)audit::LogParser::ParseText(text, &log);
      auto t0 = now();
      (void)audit::ReduceLog(&log, opts);
      best_ms = std::min(best_ms, 1000.0 * Secs(t0, now()));
    }
    if (threads == 1) cpr_base = best_ms;
    table.AddRow({"cpr", threads, Cell(best_ms, 3),
                  Cell(cpr_base / std::max(best_ms, 1e-9), 2),
                  Cell(events / 1e6 / (best_ms / 1000.0), 2)});
  }
  table.Done();
}

}  // namespace
}  // namespace raptor::bench

int main(int argc, char** argv) {
  raptor::bench::Init(argc, argv, "ingest");
  raptor::bench::LoadThroughput();
  raptor::bench::CprAblation();
  raptor::bench::ParallelScaling();
  raptor::bench::Finish();
  return 0;
}
