// Shared driver for the end-to-end hunt experiments (E5, E6): build a
// trace with benign noise around one injected attack, run the full
// OSCTI-to-results pipeline, and report per-stage latency plus hunting
// precision/recall against the narrated ground truth.

#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <set>

#include "bench_util.h"
#include "core/threat_raptor.h"
#include "tbql/printer.h"

namespace raptor::bench {

using AttackInjector = std::function<audit::AttackTrace(
    audit::WorkloadGenerator*, audit::AuditLog*)>;

inline void RunHuntExperiment(const char* experiment_id,
                              const char* attack_name,
                              const AttackInjector& inject) {
  Narrate("%s: end-to-end hunt — %s\n", experiment_id, attack_name);
  Table table("hunt", {"benign", "cpr_x", "extract_ms", "synth_ms", "exec_ms",
                       "rows", "precision", "recall"});

  std::string query_text;
  for (size_t benign : {10'000u, 100'000u, 400'000u}) {
    ThreatRaptor system;
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(benign / 2, system.mutable_log());
    audit::AttackTrace attack = inject(&gen, system.mutable_log());
    gen.GenerateBenign(benign / 2, system.mutable_log());
    (void)system.FinalizeStorage();

    auto now = [] { return std::chrono::steady_clock::now(); };
    auto ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };

    auto t0 = now();
    auto extraction = system.ExtractBehavior(attack.report_text);
    auto t1 = now();
    auto synthesis = system.SynthesizeQuery(extraction.graph);
    auto t2 = now();
    if (!synthesis.ok()) {
      Narrate("synthesis failed: %s\n",
              synthesis.status().ToString().c_str());
      return;
    }
    auto result = system.ExecuteQuery(synthesis->query);
    auto t3 = now();
    if (!result.ok()) {
      Narrate("execution failed: %s\n", result.status().ToString().c_str());
      return;
    }
    query_text = tbql::Print(synthesis->query);

    auto matched = result->MatchedEvents();
    auto truth = system.TranslateEventIds(attack.core_event_ids);
    std::set<audit::EventId> truth_set(truth.begin(), truth.end());
    size_t tp = 0;
    for (audit::EventId id : matched) tp += truth_set.count(id);
    double precision =
        matched.empty() ? 0.0 : static_cast<double>(tp) / matched.size();
    double recall =
        truth.empty() ? 0.0 : static_cast<double>(tp) / truth.size();

    table.AddRow({benign, system.cpr_stats().ReductionRatio(), ms(t0, t1),
                  ms(t1, t2), ms(t2, t3), result->rows.size(),
                  Cell(precision, 2), Cell(recall, 2)});
  }
  table.Done();
  Narrate("Synthesized TBQL query:\n%s\n", query_text.c_str());
  AddExtra("query_text", query_text);
}

}  // namespace raptor::bench
