// Data-statistics maintenance overhead on the storage load path.
//
// The statistics subsystem (storage/stats/) folds sampled rows into
// per-column sketches and every graph edge into degree distributions on
// the serial load/sync path. This harness measures the marginal cost of
// that maintenance by replaying the loaded tables' rows through fresh
// TableStatistics objects and the audit log's edges through fresh
// DegreeDistributions — byte-for-byte the work SetStatisticsEnabled(true)
// adds — and gates it against the statistics-off load time: more than 5%
// fails the bench, so a regression in sketch cost cannot land silently.
//
// Why a replay instead of differencing A/B loads: on a shared runner,
// individual loads swing by +-20% even on the CPU clock (cache and
// memory-bandwidth pollution costs real cycles), so the difference of two
// ~140 ms measurements is noise at the few-percent level no matter how
// the arms are paired or which robust statistic summarizes them. The
// replay measures the added work directly as a ~5 ms tight loop whose
// min-over-reps is stable, and the ratio against the min-over-reps base
// inherits that stability. A/B loads are still reported (informational)
// to confirm the replayed cost matches the integrated delta in shape.
//
// The JSON document doubles as the BENCH_stats_overhead.json baseline for
// scripts/bench_compare.py.

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <vector>

#include "audit/generator.h"
#include "bench_util.h"
#include "storage/graph/graph_store.h"
#include "storage/relational/database.h"
#include "storage/stats/table_statistics.h"

namespace raptor::bench {
namespace {

constexpr double kMaxOverheadPct = 5.0;

/// Per-thread CPU time: the load path under measurement is serial, and
/// unlike wall time this is immune to scheduler preemption by noisy
/// co-tenants — the difference between a usable 5% gate and a coin flip
/// on a shared runner.
double ThreadCpuMs() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

/// Relational load of `log`; returns CPU ms.
double LoadRelational(const audit::AuditLog& log, bool stats,
                      size_t* stats_bytes) {
  double t0 = ThreadCpuMs();
  rel::RelationalDatabase rel_db;
  rel_db.SetStatisticsEnabled(stats);
  rel_db.Load(log);
  double ms = ThreadCpuMs() - t0;
  if (stats_bytes != nullptr) *stats_bytes = rel_db.StatisticsBytes();
  return ms;
}

/// Graph build of `log`; returns CPU ms.
double LoadGraph(const audit::AuditLog& log, bool stats) {
  double t0 = ThreadCpuMs();
  graph::GraphStore graph_db(log, /*degree_statistics=*/stats);
  return ThreadCpuMs() - t0;
}

/// One replay of exactly the work statistics maintenance adds to a load:
/// every table row through TableStatistics::AddRow (sampling, sketches,
/// batch reconciliation) and every edge through the per-entity-type degree
/// distributions (including building the entity-type cache, mirroring
/// GraphStore). Returns CPU ms.
double ReplayStats(const rel::RelationalDatabase& db,
                   const audit::AuditLog& log) {
  double t0 = ThreadCpuMs();
  const rel::Table* tables[] = {&db.files(), &db.procs(), &db.nets(),
                                &db.events()};
  for (const rel::Table* t : tables) {
    stats::TableStatistics st(t->name(), t->schema());
    const size_t n = t->num_rows();
    for (size_t id = 0; id < n; ++id) st.AddRow(t->row(id));
    st.EndBatch();
  }
  stats::DegreeDistribution out_dd[3], in_dd[3];
  std::vector<uint8_t> types;
  types.reserve(log.entity_count());
  for (size_t i = 0; i < log.entity_count(); ++i) {
    uint8_t ty = static_cast<uint8_t>(log.entity(i).type);
    types.push_back(ty);
    out_dd[ty].AddNode();
    in_dd[ty].AddNode();
  }
  std::vector<uint32_t> outdeg(log.entity_count(), 0);
  std::vector<uint32_t> indeg(log.entity_count(), 0);
  for (size_t i = 0; i < log.event_count(); ++i) {
    const audit::SystemEvent& ev = log.event(i);
    out_dd[types[ev.subject]].IncrementDegree(outdeg[ev.subject]++);
    in_dd[types[ev.object]].IncrementDegree(indeg[ev.object]++);
  }
  return ThreadCpuMs() - t0;
}

bool RunOverhead() {
  Narrate("Statistics maintenance overhead on storage load (gate: <%.0f%%)\n",
          kMaxOverheadPct);
  Table table("stats_overhead",
              {"config", "events", "ms", "stats_bytes", "overhead_pct"});

  const size_t events = 100'000;
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(events, &log);
  (void)gen.InjectDataLeakageAttack(&log);

  // The replay source: a stats-off database supplies the rows so the
  // replay's TableStatistics start from the same blank state a real
  // load's do.
  rel::RelationalDatabase db;
  db.SetStatisticsEnabled(false);
  db.Load(log);

  // Informational A/B loads (alternating arms) plus the two gate
  // measurements. Contention only ever adds CPU time, so the min over
  // reps is the cleanest estimate of each quantity — but a burst can
  // outlast any back-to-back block, so the short replay reps are spread
  // across the whole bench run (a batch between every pair of loads)
  // instead of being taken in one burst-sized clump.
  constexpr int kPairs = 6;
  constexpr int kReplayRepsPerPair = 6;
  double rel_on = 1e300, rel_off = 1e300, graph_on = 1e300,
         graph_off = 1e300, replay_ms = 1e300;
  size_t stats_bytes = 0;
  for (int pair = 0; pair < kPairs; ++pair) {
    const bool off_first = (pair & 1) == 0;
    for (int arm = 0; arm < 2; ++arm) {
      const bool stats = (arm == 0) == !off_first;
      if (stats) {
        rel_on = std::min(rel_on, LoadRelational(log, true, &stats_bytes));
        graph_on = std::min(graph_on, LoadGraph(log, true));
      } else {
        rel_off = std::min(rel_off, LoadRelational(log, false, nullptr));
        graph_off = std::min(graph_off, LoadGraph(log, false));
      }
    }
    for (int rep = 0; rep < kReplayRepsPerPair; ++rep) {
      replay_ms = std::min(replay_ms, ReplayStats(db, log));
    }
  }

  const double base_ms = rel_off + graph_off;
  const double overhead_pct =
      base_ms <= 0 ? 0.0 : 100.0 * replay_ms / base_ms;

  auto pct = [](double on, double off) {
    return off <= 0 ? 0.0 : 100.0 * (on - off) / off;
  };
  table.AddRow(
      {"rel_off", events, Cell(rel_off, 3), size_t{0}, Cell(0.0, 2)});
  table.AddRow({"rel_on", events, Cell(rel_on, 3), stats_bytes,
                Cell(pct(rel_on, rel_off), 2)});
  table.AddRow(
      {"graph_off", events, Cell(graph_off, 3), size_t{0}, Cell(0.0, 2)});
  table.AddRow({"graph_on", events, Cell(graph_on, 3), size_t{0},
                Cell(pct(graph_on, graph_off), 2)});
  table.AddRow({"stats_replay", events, Cell(replay_ms, 3), stats_bytes,
                Cell(overhead_pct, 2)});
  table.Done();
  AddExtra("replay_ms", Json(replay_ms));
  AddExtra("base_ms", Json(base_ms));
  AddExtra("overhead_pct", Json(overhead_pct));
  AddExtra("gate_pct", Json(kMaxOverheadPct));

  bool pass = overhead_pct < kMaxOverheadPct;
  Narrate("Shape check: a non-sampled row costs one counter + LCG step;\n"
          "sampled rows pay O(1) sketch work (HLL register update, short\n"
          "flat-slot scan, reservoir LCG) and heavy-hitter sketches drop\n"
          "themselves on columns with nothing heavy, so the replayed\n"
          "marginal cost stays in low single digits of the load time.\n"
          "stats replay %.2f ms over a %.2f ms base: %.2f%% -> %s\n",
          replay_ms, base_ms, overhead_pct, pass ? "PASS" : "FAIL");
  if (!pass) {
    std::fprintf(stderr,
                 "bench_stats_overhead: statistics overhead %.2f%% exceeds "
                 "the %.0f%% gate\n",
                 overhead_pct, kMaxOverheadPct);
  }
  return pass;
}

}  // namespace
}  // namespace raptor::bench

int main(int argc, char** argv) {
  raptor::bench::Init(argc, argv, "stats_overhead");
  bool pass = raptor::bench::RunOverhead();
  raptor::bench::Finish();
  return pass ? 0 : 1;
}
