// Sampling-profiler overhead (ISSUE 7 acceptance): with the profiler
// running at the default 99 Hz, end-to-end hunt latency must stay within
// 5% of the profiler-off wall time.
//
// Two levels:
//   (a) micro: cost of one span open/close with tracking off (one relaxed
//       atomic load) and with tracking on (a slot-mutex publish of the
//       rebuilt span stack).
//   (b) macro: the full hunt pipeline (extract -> synthesize -> execute on
//       a 50k-event trace) with the profiler stopped vs running at 99 Hz.
//       The tracer ring sink is on in both arms so the delta isolates the
//       profiler itself.
//
// After the google-benchmark run, main() re-measures both macro arms
// interleaved and exits non-zero when the median overhead exceeds 5% —
// scripts/bench.sh runs every bench binary under `set -e`, so CI fails on
// a profiler that got expensive, independent of the bench_compare.py
// baseline diff (which additionally gates the recorded arm times).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/threat_raptor.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace raptor::bench {
namespace {

ThreatRaptor& GetSystem() {
  static auto* system = [] {
    auto s = std::make_unique<ThreatRaptor>();
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(25'000, s->mutable_log());
    gen.InjectDataLeakageAttack(s->mutable_log());
    gen.GenerateBenign(25'000, s->mutable_log());
    (void)s->FinalizeStorage();
    return s.release();
  }();
  return *system;
}

const std::string& GetReport() {
  static auto* report = [] {
    ThreatRaptor scratch;
    audit::WorkloadGenerator gen;
    return new std::string(
        gen.InjectDataLeakageAttack(scratch.mutable_log()).report_text);
  }();
  return *report;
}

void SetProfiler(bool on) {
  obs::Profiler& profiler = obs::Profiler::Default();
  obs::ProfilerOptions options;
  options.enabled = on;
  options.hz = 99;
  profiler.Configure(options);
}

// --- (a) Micro: span open/close publish cost. ---

void BM_SpanPublish(benchmark::State& state, bool tracking) {
  SetProfiler(tracking);
  obs::Tracer& tracer = obs::Tracer::Default();
  bool was_enabled = tracer.enabled();
  tracer.set_enabled(true);
  {
    obs::TraceScope scope = tracer.BeginTrace("bench", /*force=*/true);
    for (auto _ : state) {
      obs::Span span = tracer.StartSpan("op");
      benchmark::DoNotOptimize(span.active());
    }
  }
  tracer.set_enabled(was_enabled);
  SetProfiler(false);
}

// --- (b) Macro: full hunts, profiler off vs 99 Hz. ---

void BM_Hunt(benchmark::State& state, bool profiler_on) {
  ThreatRaptor& system = GetSystem();
  const std::string& report = GetReport();
  obs::Tracer& tracer = obs::Tracer::Default();
  bool was_enabled = tracer.enabled();
  tracer.set_enabled(true);  // spans recorded in both arms
  SetProfiler(profiler_on);
  for (auto _ : state) {
    auto hunt = system.Hunt(report);
    if (!hunt.ok()) std::abort();
    benchmark::DoNotOptimize(hunt->result.rows.size());
  }
  SetProfiler(false);
  tracer.set_enabled(was_enabled);
}

/// Median hunt wall time (ms) over `reps` hunts with the profiler off/on.
double MedianHuntMs(bool profiler_on, int reps) {
  ThreatRaptor& system = GetSystem();
  const std::string& report = GetReport();
  SetProfiler(profiler_on);
  std::vector<double> ms;
  ms.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto hunt = system.Hunt(report);
    auto t1 = std::chrono::steady_clock::now();
    if (!hunt.ok()) std::abort();
    ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  SetProfiler(false);
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

/// The <5% overhead gate. Interleaving the arms (off, on, off, on ...)
/// cancels machine-load drift; the median cancels outliers.
bool OverheadWithinBound(int reps, double* off_out, double* on_out) {
  double off = MedianHuntMs(false, reps);
  double on = MedianHuntMs(true, reps);
  *off_out = off;
  *on_out = on;
  return on <= off * 1.05;
}

}  // namespace
}  // namespace raptor::bench

int main(int argc, char** argv) {
  using raptor::bench::BM_Hunt;
  using raptor::bench::BM_SpanPublish;
  // Register this thread so tracking-on publishes hit the real slot path.
  raptor::obs::ProfiledThread profiled("bench");

  benchmark::RegisterBenchmark(
      "profiler/span_publish/off",
      [](benchmark::State& s) { BM_SpanPublish(s, false); });
  benchmark::RegisterBenchmark(
      "profiler/span_publish/on",
      [](benchmark::State& s) { BM_SpanPublish(s, true); });
  benchmark::RegisterBenchmark(
      "profiler/hunt/off",
      [](benchmark::State& s) { BM_Hunt(s, false); })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "profiler/hunt/99hz",
      [](benchmark::State& s) { BM_Hunt(s, true); })
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // The acceptance gate (stderr keeps --benchmark_format=json parseable).
  double off = 0;
  double on = 0;
  bool ok = raptor::bench::OverheadWithinBound(21, &off, &on);
  if (!ok) {
    // One retry with more reps: a single gate run shares the machine with
    // whatever CI neighbors exist, and the bound is meant to catch a
    // profiler that got expensive, not scheduler noise.
    ok = raptor::bench::OverheadWithinBound(41, &off, &on);
  }
  std::fprintf(stderr,
               "profiler overhead gate: off=%.3f ms, 99hz=%.3f ms (%+.1f%%, "
               "bound +5%%): %s\n",
               off, on, (on / off - 1) * 100, ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
