// Experiment E3 (DESIGN.md): query conciseness.
//
// Reproduces the full paper's conciseness comparison: for each attack
// query, the TBQL text vs the semantically equivalent SQL and Cypher a
// human would otherwise write (the engine's own compilation targets,
// rendered by engine/translate). Reported: characters, lines, and the
// number of syntactic constructs (joins/MATCHes vs event patterns).
//
// Expected shape: TBQL is several times more concise than SQL and Cypher.

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "core/threat_raptor.h"
#include "engine/translate.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"
#include "tbql/printer.h"

namespace raptor::bench {
namespace {

size_t CountLines(const std::string& s) {
  size_t n = 1;
  for (char c : s) {
    if (c == '\n') ++n;
  }
  return n;
}

size_t CountOccurrences(const std::string& s, const std::string& needle) {
  size_t n = 0, pos = 0;
  while ((pos = s.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

void Report(const char* name, const tbql::Query& query) {
  std::string tbql_text = tbql::Print(query);
  std::string sql = engine::RenderSql(query);
  std::string cypher = engine::RenderCypher(query);

  Narrate("\nQuery: %s (%zu event patterns)\n", name, query.patterns.size());
  Table table(std::string("conciseness/") + name,
              {"language", "chars", "lines", "constructs"});
  table.AddRow({"TBQL", tbql_text.size(), CountLines(tbql_text),
                StrFormat("%zu event patterns", query.patterns.size())});
  table.AddRow(
      {"SQL", sql.size(), CountLines(sql),
       StrFormat("%zu table aliases, %zu WHERE conjuncts",
                 CountOccurrences(sql, " AS "),
                 CountOccurrences(sql, "\n  AND ") + 1)});
  table.AddRow({"Cypher", cypher.size(), CountLines(cypher),
                StrFormat("%zu MATCH clauses",
                          CountOccurrences(cypher, "MATCH "))});
  table.Done();
  Narrate("TBQL size ratio: %.2fx vs SQL, %.2fx vs Cypher\n",
          static_cast<double>(sql.size()) / tbql_text.size(),
          static_cast<double>(cypher.size()) / tbql_text.size());
  AddExtra(std::string("size_ratio_sql/") + name,
           static_cast<double>(sql.size()) / tbql_text.size());
  AddExtra(std::string("size_ratio_cypher/") + name,
           static_cast<double>(cypher.size()) / tbql_text.size());
}

void Run() {
  Narrate("E3: Query conciseness — TBQL vs hand-written SQL/Cypher\n");

  // Synthesize the two attack queries from their reports, exactly as the
  // end-to-end pipeline would.
  audit::WorkloadGenerator gen;
  audit::AuditLog scratch;
  auto leakage = gen.InjectDataLeakageAttack(&scratch);
  auto cracking = gen.InjectPasswordCrackingAttack(&scratch);

  nlp::ExtractionPipeline pipeline;
  synth::QuerySynthesizer synthesizer;
  for (const auto& [name, report] :
       {std::pair<const char*, std::string>{"data_leakage",
                                            leakage.report_text},
        {"password_cracking", cracking.report_text}}) {
    auto extraction = pipeline.Extract(report);
    auto synthesis = synthesizer.Synthesize(extraction.graph);
    if (!synthesis.ok()) {
      Narrate("synthesis failed for %s: %s\n", name,
              synthesis.status().ToString().c_str());
      continue;
    }
    Report(name, synthesis->query);
  }

  // A path-pattern query, where the gap is largest (SQL needs a recursive
  // CTE, Cypher a variable-length match).
  auto q = tbql::Parse(
      "proc p[\"%bash%\"] ~>(1~4)[read] file f[\"/etc/shadow\"]\n"
      "return p, f");
  if (q.ok() && tbql::Analyze(&*q).ok()) {
    Report("variable_length_path", *q);
  }
}

}  // namespace
}  // namespace raptor::bench

int main(int argc, char** argv) {
  raptor::bench::Init(argc, argv, "conciseness");
  raptor::bench::Run();
  raptor::bench::Finish();
  return 0;
}
