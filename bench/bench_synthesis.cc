// Experiment E7 (DESIGN.md): query synthesis effectiveness.
//
// Two parts:
//   (a) Synthesis coverage over the labeled corpus: behavior-graph size,
//       nodes dropped by type screening, edges without a mapping rule, and
//       the number of synthesized patterns.
//   (b) Equivalence on the two demo attacks: the synthesized query must
//       return exactly the rows of the hand-written ground-truth query.
//
// Expected shape: every auditable edge maps to a pattern; synthesized and
// hand-written queries agree.

#include <cstdio>

#include "bench_util.h"
#include "core/threat_raptor.h"
#include "corpus.h"
#include "tbql/printer.h"

namespace raptor::bench {
namespace {

void CoverageTable() {
  std::printf("E7a: Synthesis coverage over the labeled corpus\n");
  PrintRule(90);
  std::printf("%-26s | %5s | %5s | %8s | %8s | %8s | %8s\n", "document",
              "nodes", "edges", "screened", "unmapped", "patterns",
              "temporal");
  PrintRule(90);
  nlp::ExtractionPipeline pipeline;
  synth::QuerySynthesizer synthesizer;
  for (const CorpusDoc& doc : BuildCorpus()) {
    auto extraction = pipeline.Extract(doc.text);
    auto synthesis = synthesizer.Synthesize(extraction.graph);
    if (!synthesis.ok()) {
      std::printf("%-26s | %5zu | %5zu | %8s\n", doc.name.c_str(),
                  extraction.graph.num_nodes(), extraction.graph.num_edges(),
                  "n/a (no mappable behavior)");
      continue;
    }
    std::printf("%-26s | %5zu | %5zu | %8zu | %8zu | %8zu | %8zu\n",
                doc.name.c_str(), extraction.graph.num_nodes(),
                extraction.graph.num_edges(),
                synthesis->screened_nodes.size(),
                synthesis->unmapped_edges.size(),
                synthesis->query.patterns.size(),
                synthesis->query.temporal.size());
  }
  PrintRule(90);
}

/// Hand-written ground-truth query for the data leakage attack (what an
/// expert analyst would write; the paper's Figure 2 query).
const char* kHandWrittenLeakage =
    "evt1: proc p1[\"%/bin/tar%\"] read file f1[\"/etc/passwd\"]\n"
    "evt2: proc p1 write file f2[\"/tmp/data.tar\"]\n"
    "evt3: proc p2[\"%/bin/gzip%\"] read file f2\n"
    "evt4: proc p2 write file f3[\"/tmp/data.tar.gz\"]\n"
    "evt5: proc p3[\"%/usr/bin/curl%\"] read file f3\n"
    "evt6: proc p3 send net n1[dstip = \"161.35.10.8\"]\n"
    "with evt1 before evt2, evt2 before evt3, evt3 before evt4, "
    "evt4 before evt5, evt5 before evt6\n"
    "return p1, p2, p3, f1, f2, f3, n1.dstip";

void EquivalenceCheck() {
  std::printf("\nE7b: Synthesized vs hand-written query equivalence\n");
  PrintRule(90);
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(50'000, system.mutable_log());
  auto attack = gen.InjectDataLeakageAttack(system.mutable_log());
  gen.GenerateBenign(50'000, system.mutable_log());
  (void)system.FinalizeStorage();

  auto hunt = system.Hunt(attack.report_text);
  auto manual = system.ExecuteTbql(kHandWrittenLeakage);
  if (!hunt.ok() || !manual.ok()) {
    std::printf("FAILED: %s / %s\n", hunt.status().ToString().c_str(),
                manual.status().ToString().c_str());
    return;
  }
  auto synth_events = hunt->result.MatchedEvents();
  auto manual_events = manual->MatchedEvents();
  bool same = synth_events == manual_events;
  std::printf("synthesized query: %zu patterns, %zu result rows, %zu events\n",
              hunt->synthesis.query.patterns.size(), hunt->result.rows.size(),
              synth_events.size());
  std::printf("hand-written query: %zu result rows, %zu events\n",
              manual->rows.size(), manual_events.size());
  std::printf("matched event sets identical: %s\n", same ? "YES" : "NO");
  PrintRule(90);
}

}  // namespace
}  // namespace raptor::bench

int main() {
  raptor::bench::CoverageTable();
  raptor::bench::EquivalenceCheck();
  return 0;
}
