// Experiment E7 (DESIGN.md): query synthesis effectiveness.
//
// Two parts:
//   (a) Synthesis coverage over the labeled corpus: behavior-graph size,
//       nodes dropped by type screening, edges without a mapping rule, and
//       the number of synthesized patterns.
//   (b) Equivalence on the two demo attacks: the synthesized query must
//       return exactly the rows of the hand-written ground-truth query.
//
// Expected shape: every auditable edge maps to a pattern; synthesized and
// hand-written queries agree.

#include <cstdio>

#include "bench_util.h"
#include "core/threat_raptor.h"
#include "corpus.h"
#include "tbql/printer.h"

namespace raptor::bench {
namespace {

void CoverageTable() {
  Narrate("E7a: Synthesis coverage over the labeled corpus\n");
  Table table("synthesis_coverage",
              {"document", "nodes", "edges", "screened", "unmapped",
               "patterns", "temporal"});
  nlp::ExtractionPipeline pipeline;
  synth::QuerySynthesizer synthesizer;
  for (const CorpusDoc& doc : BuildCorpus()) {
    auto extraction = pipeline.Extract(doc.text);
    auto synthesis = synthesizer.Synthesize(extraction.graph);
    if (!synthesis.ok()) {
      table.AddRow({doc.name, extraction.graph.num_nodes(),
                    extraction.graph.num_edges(),
                    "n/a (no mappable behavior)", "", "", ""});
      continue;
    }
    table.AddRow({doc.name, extraction.graph.num_nodes(),
                  extraction.graph.num_edges(),
                  synthesis->screened_nodes.size(),
                  synthesis->unmapped_edges.size(),
                  synthesis->query.patterns.size(),
                  synthesis->query.temporal.size()});
  }
  table.Done();
}

/// Hand-written ground-truth query for the data leakage attack (what an
/// expert analyst would write; the paper's Figure 2 query).
const char* kHandWrittenLeakage =
    "evt1: proc p1[\"%/bin/tar%\"] read file f1[\"/etc/passwd\"]\n"
    "evt2: proc p1 write file f2[\"/tmp/data.tar\"]\n"
    "evt3: proc p2[\"%/bin/gzip%\"] read file f2\n"
    "evt4: proc p2 write file f3[\"/tmp/data.tar.gz\"]\n"
    "evt5: proc p3[\"%/usr/bin/curl%\"] read file f3\n"
    "evt6: proc p3 send net n1[dstip = \"161.35.10.8\"]\n"
    "with evt1 before evt2, evt2 before evt3, evt3 before evt4, "
    "evt4 before evt5, evt5 before evt6\n"
    "return p1, p2, p3, f1, f2, f3, n1.dstip";

void EquivalenceCheck() {
  Narrate("\nE7b: Synthesized vs hand-written query equivalence\n");
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(50'000, system.mutable_log());
  auto attack = gen.InjectDataLeakageAttack(system.mutable_log());
  gen.GenerateBenign(50'000, system.mutable_log());
  (void)system.FinalizeStorage();

  auto hunt = system.Hunt(attack.report_text);
  auto manual = system.ExecuteTbql(kHandWrittenLeakage);
  if (!hunt.ok() || !manual.ok()) {
    Narrate("FAILED: %s / %s\n", hunt.status().ToString().c_str(),
            manual.status().ToString().c_str());
    return;
  }
  auto synth_events = hunt->result.MatchedEvents();
  auto manual_events = manual->MatchedEvents();
  bool same = synth_events == manual_events;
  Table table("equivalence", {"query", "patterns", "rows", "events"});
  table.AddRow({"synthesized", hunt->synthesis.query.patterns.size(),
                hunt->result.rows.size(), synth_events.size()});
  table.AddRow({"hand-written", manual->stats.schedule.size(),
                manual->rows.size(), manual_events.size()});
  table.Done();
  Narrate("matched event sets identical: %s\n", same ? "YES" : "NO");
  AddExtra("matched_event_sets_identical", same);
}

}  // namespace
}  // namespace raptor::bench

int main(int argc, char** argv) {
  raptor::bench::Init(argc, argv, "synthesis");
  raptor::bench::CoverageTable();
  raptor::bench::EquivalenceCheck();
  raptor::bench::Finish();
  return 0;
}
