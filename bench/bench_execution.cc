// Experiment E2 (DESIGN.md): query execution performance.
//
// Part (a): the full paper's execution-time comparison — the THREATRAPTOR
// engine (pruning-score scheduling + inter-pattern constraint propagation)
// vs the unscheduled baseline (declaration order, patterns executed
// independently), across the two §III attack queries plus a broad
// unselective query, on traces from 10^4 to 4x10^5 events. Each run also
// reports rows_touched, the work counter that explains the wall time.
//
// Part (b): the parallel execution scaling sweep — the scheduled engine at
// 200k events with num_threads 1/2/4/hardware. Results are byte-identical
// at every thread count (tests/parallel_test.cc holds that line); this
// table records what the parallelism buys in wall time.
//
// Expected shape: scheduled wins everywhere and the gap widens with trace
// size — propagation turns the unconstrained patterns' scans into index
// probes. The thread sweep helps most on the broad query, whose
// unconstrained first pattern is a partitioned full scan.
//
// Part (c): the columnar storage sweep — the same engine on the columnar
// event-segment store (zone maps + bloom filters + per-segment posting
// lists; ExecutionOptions::use_columnar, the default) vs the row-store
// access paths (use_columnar=false), on a 200k-event selective-hunt
// workload: the two attack queries plus narrow time-window hunts. The
// acceptance line for ROADMAP item 2 is >= 1.5x on this workload.
//
// Part (d): the scan-reserve micro-bench — a forced full scan over the
// events table with and without the estimator-fed ScanOptions::
// expected_rows reservation hint.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/threat_raptor.h"
#include "storage/relational/predicate.h"
#include "storage/relational/table.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"

namespace raptor::bench {
namespace {

/// The two attack queries, as the synthesizer emits them (hand-inlined so
/// the bench measures execution only).
const char* kLeakageQuery =
    "evt1: proc p1[\"%/bin/tar%\"] read file f1[\"/etc/passwd\"]\n"
    "evt2: proc p1 write file f2[\"/tmp/data.tar\"]\n"
    "evt3: proc p2[\"%/bin/gzip%\"] read file f2\n"
    "evt4: proc p2 write file f3[\"/tmp/data.tar.gz\"]\n"
    "evt5: proc p3[\"%/usr/bin/curl%\"] read file f3\n"
    "evt6: proc p3 send net n1[dstip = \"161.35.10.8\"]\n"
    "with evt1 before evt2, evt2 before evt3, evt3 before evt4, "
    "evt4 before evt5, evt5 before evt6\n"
    "return p1, p2, p3, f1, f2, f3, n1";

const char* kCrackingQuery =
    "evt1: proc p1[\"%/bin/bash%\"] connect net n1[dstip = "
    "\"108.160.172.1\"]\n"
    "evt2: proc p1 write file f1[\"/tmp/dropbox_image.jpg\"]\n"
    "evt3: proc p1 read file f1\n"
    "evt4: proc p1 connect net n2[dstip = \"161.35.10.8\"]\n"
    "evt5: proc p1 write file f2[\"/tmp/cracker\"]\n"
    "evt6: proc p2[\"%/tmp/cracker%\"] read file f3[\"/etc/shadow\"]\n"
    "evt7: proc p2 write file f4[\"/tmp/crackedpw.txt\"]\n"
    "evt8: proc p2 send net n3[dstip = \"161.35.10.8\"]\n"
    "with evt1 before evt2, evt2 before evt3, evt3 before evt4, "
    "evt4 before evt5, evt5 before evt6, evt6 before evt7, "
    "evt7 before evt8\n"
    "return p1, p2, f1, f2, f3, f4";

/// A broad query whose first pattern is wholly unconstrained — the case
/// where scheduling, propagation, and partitioned scans matter most.
const char* kBroadQuery =
    "e1: proc p read file f1\n"
    "e2: proc p write file f2[\"/tmp/data.tar\"]\n"
    "with e1 before e2\nreturn p, f1";

struct QueryDef {
  const char* name;
  const char* src;
};

const QueryDef kQueries[] = {
    {"leakage", kLeakageQuery},
    {"cracking", kCrackingQuery},
    {"broad", kBroadQuery},
};

/// One prepared system per trace size, shared across runs.
ThreatRaptor& GetTrace(size_t benign_events) {
  static auto* cache = new std::map<size_t, std::unique_ptr<ThreatRaptor>>();
  auto it = cache->find(benign_events);
  if (it == cache->end()) {
    auto system = std::make_unique<ThreatRaptor>();
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(benign_events / 2, system->mutable_log());
    gen.InjectDataLeakageAttack(system->mutable_log());
    gen.InjectPasswordCrackingAttack(system->mutable_log());
    gen.GenerateBenign(benign_events / 2, system->mutable_log());
    (void)system->FinalizeStorage();
    it = cache->emplace(benign_events, std::move(system)).first;
  }
  return *it->second;
}

tbql::Query ParseQuery(const char* src) {
  auto q = tbql::Parse(src);
  if (!q.ok() || !tbql::Analyze(&*q).ok()) std::abort();
  return *std::move(q);
}

struct RunResult {
  double ms = 0;
  uint64_t rows_touched = 0;
  size_t result_rows = 0;
  uint64_t segments_scanned = 0;
  uint64_t segments_pruned = 0;
};

/// Executes `query` `reps` times and keeps the fastest run (minimum is the
/// noise-robust statistic for a single-machine trajectory).
RunResult RunQuery(ThreatRaptor& system, const tbql::Query& query,
                   const engine::ExecutionOptions& opts, int reps) {
  engine::QueryEngine engine(
      &system.log(),
      const_cast<rel::RelationalDatabase*>(&system.relational()),
      const_cast<graph::GraphStore*>(&system.graph()));
  RunResult best;
  best.ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    auto result = engine.Execute(query, opts);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    if (!result.ok()) std::abort();
    if (ms < best.ms) {
      best.ms = ms;
      best.rows_touched = result->stats.relational_rows_touched;
      best.result_rows = result->rows.size();
      best.segments_scanned = 0;
      best.segments_pruned = 0;
      for (uint64_t s : result->stats.pattern_segments_scanned) {
        best.segments_scanned += s;
      }
      for (uint64_t s : result->stats.pattern_segments_pruned) {
        best.segments_pruned += s;
      }
    }
  }
  return best;
}

/// Thread counts for the scaling sweep: 1, 2, 4 and the hardware count,
/// deduplicated in order (on small machines several coincide).
std::vector<size_t> ThreadSweep() {
  std::vector<size_t> sweep;
  for (size_t t : {size_t{1}, size_t{2}, size_t{4},
                   ThreadPool::HardwareThreads()}) {
    if (std::find(sweep.begin(), sweep.end(), t) == sweep.end()) {
      sweep.push_back(t);
    }
  }
  return sweep;
}

void ExecutionComparison() {
  Narrate("E2a: scheduled vs unscheduled execution time (ms)\n");
  Table table("execution", {"query", "mode", "events", "ms", "rows_touched",
                            "result_rows"});
  for (const QueryDef& q : kQueries) {
    tbql::Query query = ParseQuery(q.src);
    for (size_t events : {10'000u, 50'000u, 200'000u, 400'000u}) {
      ThreatRaptor& system = GetTrace(events);
      for (bool scheduled : {true, false}) {
        engine::ExecutionOptions opts;
        opts.use_pruning_scores = scheduled;
        opts.propagate_constraints = scheduled;
        opts.num_threads = 1;  // the serial baseline E2 has always measured
        int reps = events >= 400'000 ? 1 : 2;
        RunResult r = RunQuery(system, query, opts, reps);
        table.AddRow({q.name, scheduled ? "scheduled" : "unscheduled", events,
                      Cell(r.ms, 3), static_cast<size_t>(r.rows_touched),
                      r.result_rows});
      }
    }
  }
  table.Done();
  Narrate(
      "Shape check: scheduled beats unscheduled everywhere; the gap widens\n"
      "with trace size as propagation turns scans into index probes.\n");
}

void ParallelScaling() {
  Narrate("\nE2b: parallel scaling, scheduled engine at 200k events\n");
  Table table("parallel_scaling",
              {"query", "threads", "ms", "speedup", "result_rows"});
  ThreatRaptor& system = GetTrace(200'000);
  for (const QueryDef& q : kQueries) {
    tbql::Query query = ParseQuery(q.src);
    double base_ms = 0;
    for (size_t threads : ThreadSweep()) {
      engine::ExecutionOptions opts;
      opts.num_threads = threads;
      RunResult r = RunQuery(system, query, opts, 2);
      if (threads == 1) base_ms = r.ms;
      table.AddRow({q.name, threads, Cell(r.ms, 3),
                    Cell(base_ms / std::max(r.ms, 1e-9), 2), r.result_rows});
    }
  }
  table.Done();
  Narrate(
      "Shape check: result_rows is constant down each query's sweep —\n"
      "parallel execution is byte-identical, only the wall time moves.\n");
}

/// The selective-hunt workload for the columnar sweep: the two §III attack
/// queries (entity-filtered probes) plus two narrow time-window hunts
/// (filterless single-operation patterns, the zone-map pruning case). The
/// window hunts are built against the actual trace time span so each
/// window covers ~2% of the events.
std::vector<std::pair<std::string, std::string>> SelectiveHuntWorkload(
    ThreatRaptor& system) {
  const auto& events = system.log().events();
  int64_t t0 = events.front().start_time;
  int64_t t1 = events.back().start_time;
  int64_t span = t1 - t0;
  auto window = [&](double lo, double hi) {
    return StrFormat("from %lld to %lld",
                     static_cast<long long>(t0 + span * lo),
                     static_cast<long long>(t0 + span * hi));
  };
  std::vector<std::pair<std::string, std::string>> workload;
  workload.emplace_back("leakage", kLeakageQuery);
  workload.emplace_back("cracking", kCrackingQuery);
  workload.emplace_back(
      "window_read",
      StrFormat("e1: proc p read file f1 %s\n"
                "e2: proc p write file f2 %s\n"
                "with e1 before e2\nreturn p, f1, f2",
                window(0.40, 0.42).c_str(), window(0.40, 0.42).c_str()));
  workload.emplace_back(
      "window_send",
      StrFormat("e1: proc p write file f1 %s\n"
                "e2: proc p send net n1 %s\n"
                "with e1 before e2\nreturn p, f1, n1",
                window(0.70, 0.72).c_str(), window(0.70, 0.73).c_str()));
  return workload;
}

void ColumnarSweep() {
  Narrate(
      "\nE2c: columnar segments vs row store, selective hunts at 200k "
      "events\n");
  Table table("columnar",
              {"query", "mode", "ms", "speedup", "rows_touched",
               "segments_scanned", "segments_pruned", "result_rows"});
  ThreatRaptor& system = GetTrace(200'000);
  double total_row = 0, total_col = 0;
  for (const auto& [name, src] : SelectiveHuntWorkload(system)) {
    tbql::Query query = ParseQuery(src.c_str());
    RunResult arms[2];
    for (bool columnar : {false, true}) {
      engine::ExecutionOptions opts;
      opts.use_columnar = columnar;
      opts.num_threads = 1;
      arms[columnar ? 1 : 0] = RunQuery(system, query, opts, 3);
    }
    if (arms[0].result_rows != arms[1].result_rows) std::abort();
    total_row += arms[0].ms;
    total_col += arms[1].ms;
    for (bool columnar : {false, true}) {
      const RunResult& r = arms[columnar ? 1 : 0];
      table.AddRow({name, columnar ? "columnar" : "row", Cell(r.ms, 3),
                    Cell(columnar ? arms[0].ms / std::max(r.ms, 1e-9) : 1.0,
                         2),
                    static_cast<size_t>(r.rows_touched),
                    static_cast<size_t>(r.segments_scanned),
                    static_cast<size_t>(r.segments_pruned), r.result_rows});
    }
  }
  table.Done();
  Narrate(
      "Workload speedup (sum of row ms / sum of columnar ms): %.2fx "
      "(target >= 1.5x)\n",
      total_row / std::max(total_col, 1e-9));
  Narrate(
      "Shape check: result_rows matches across modes (byte-identical\n"
      "contract); the window hunts prune nearly every segment.\n");
}

void ScanReserveMicro() {
  Narrate("\nE2d: full-scan hit-vector reservation (ScanOptions::"
          "expected_rows)\n");
  Table table("scan_reserve", {"predicate", "mode", "ms", "hits"});
  ThreatRaptor& system = GetTrace(200'000);
  const rel::Table& events = system.relational().events();
  // An unindexed column forces the full-scan path either way; the two arms
  // differ only in whether the hit vector is pre-sized.
  rel::Predicate pred;
  pred.column = events.schema().Find("bytes");
  pred.op = rel::CompareOp::kGe;
  pred.value = rel::Value(int64_t{1});
  rel::Conjunction conjunction{pred};
  size_t hits = events.Select(conjunction).size();
  for (bool reserve : {false, true}) {
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      rel::ScanOptions scan;
      scan.expected_rows = reserve ? hits : 0;
      auto start = std::chrono::steady_clock::now();
      std::vector<rel::RowId> out = events.Select(conjunction, scan);
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      if (out.size() != hits) std::abort();
      best = std::min(best, ms);
    }
    table.AddRow({"bytes>=1", reserve ? "reserve" : "grow", Cell(best, 3),
                  hits});
  }
  table.Done();
  Narrate(
      "Shape check: identical hits; the reserve arm trades reallocation\n"
      "for one up-front sizing from the estimator's prediction.\n");
}

}  // namespace
}  // namespace raptor::bench

int main(int argc, char** argv) {
  raptor::bench::Init(argc, argv, "execution");
  raptor::bench::ExecutionComparison();
  raptor::bench::ParallelScaling();
  raptor::bench::ColumnarSweep();
  raptor::bench::ScanReserveMicro();
  raptor::bench::Finish();
  return 0;
}
