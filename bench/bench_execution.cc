// Experiment E2 (DESIGN.md): query execution performance.
//
// Reproduces the full paper's execution-time comparison: the THREATRAPTOR
// engine (pruning-score scheduling + inter-pattern constraint propagation)
// vs the unscheduled baseline (declaration order, patterns executed
// independently), across the two §III attack queries plus a broad
// unselective query, on traces from 10^4 to 4x10^5 events. Each run also
// reports rows_touched, the work counter that explains the wall time.
//
// Expected shape: scheduled wins everywhere and the gap widens with trace
// size — propagation turns the unconstrained patterns' scans into index
// probes.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "core/threat_raptor.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"

namespace raptor::bench {
namespace {

/// The two attack queries, as the synthesizer emits them (hand-inlined so
/// the bench measures execution only).
const char* kLeakageQuery =
    "evt1: proc p1[\"%/bin/tar%\"] read file f1[\"/etc/passwd\"]\n"
    "evt2: proc p1 write file f2[\"/tmp/data.tar\"]\n"
    "evt3: proc p2[\"%/bin/gzip%\"] read file f2\n"
    "evt4: proc p2 write file f3[\"/tmp/data.tar.gz\"]\n"
    "evt5: proc p3[\"%/usr/bin/curl%\"] read file f3\n"
    "evt6: proc p3 send net n1[dstip = \"161.35.10.8\"]\n"
    "with evt1 before evt2, evt2 before evt3, evt3 before evt4, "
    "evt4 before evt5, evt5 before evt6\n"
    "return p1, p2, p3, f1, f2, f3, n1";

const char* kCrackingQuery =
    "evt1: proc p1[\"%/bin/bash%\"] connect net n1[dstip = "
    "\"108.160.172.1\"]\n"
    "evt2: proc p1 write file f1[\"/tmp/dropbox_image.jpg\"]\n"
    "evt3: proc p1 read file f1\n"
    "evt4: proc p1 connect net n2[dstip = \"161.35.10.8\"]\n"
    "evt5: proc p1 write file f2[\"/tmp/cracker\"]\n"
    "evt6: proc p2[\"%/tmp/cracker%\"] read file f3[\"/etc/shadow\"]\n"
    "evt7: proc p2 write file f4[\"/tmp/crackedpw.txt\"]\n"
    "evt8: proc p2 send net n3[dstip = \"161.35.10.8\"]\n"
    "with evt1 before evt2, evt2 before evt3, evt3 before evt4, "
    "evt4 before evt5, evt5 before evt6, evt6 before evt7, "
    "evt7 before evt8\n"
    "return p1, p2, f1, f2, f3, f4";

/// A broad query whose first pattern is wholly unconstrained — the case
/// where scheduling and propagation matter most.
const char* kBroadQuery =
    "e1: proc p read file f1\n"
    "e2: proc p write file f2[\"/tmp/data.tar\"]\n"
    "with e1 before e2\nreturn p, f1";

/// One prepared system per trace size, shared across iterations.
ThreatRaptor& GetTrace(size_t benign_events) {
  static auto* cache = new std::map<size_t, std::unique_ptr<ThreatRaptor>>();
  auto it = cache->find(benign_events);
  if (it == cache->end()) {
    auto system = std::make_unique<ThreatRaptor>();
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(benign_events / 2, system->mutable_log());
    gen.InjectDataLeakageAttack(system->mutable_log());
    gen.InjectPasswordCrackingAttack(system->mutable_log());
    gen.GenerateBenign(benign_events / 2, system->mutable_log());
    (void)system->FinalizeStorage();
    it = cache->emplace(benign_events, std::move(system)).first;
  }
  return *it->second;
}

tbql::Query ParseQuery(const char* src) {
  auto q = tbql::Parse(src);
  if (!q.ok() || !tbql::Analyze(&*q).ok()) std::abort();
  return *std::move(q);
}

void BM_Query(benchmark::State& state, const char* src, bool scheduled) {
  ThreatRaptor& system = GetTrace(static_cast<size_t>(state.range(0)));
  tbql::Query query = ParseQuery(src);
  engine::ExecutionOptions opts;
  opts.use_pruning_scores = scheduled;
  opts.propagate_constraints = scheduled;
  engine::QueryEngine engine(
      &system.log(),
      const_cast<rel::RelationalDatabase*>(&system.relational()),
      const_cast<graph::GraphStore*>(&system.graph()));

  uint64_t rows_touched = 0;
  size_t result_rows = 0;
  for (auto _ : state) {
    auto result = engine.Execute(query, opts);
    if (result.ok()) {
      rows_touched = result->stats.relational_rows_touched;
      result_rows = result->rows.size();
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows_touched"] = static_cast<double>(rows_touched);
  state.counters["result_rows"] = static_cast<double>(result_rows);
}

void RegisterAll() {
  struct QueryDef {
    const char* name;
    const char* src;
  };
  static const QueryDef kQueries[] = {
      {"leakage", kLeakageQuery},
      {"cracking", kCrackingQuery},
      {"broad", kBroadQuery},
  };
  for (const QueryDef& q : kQueries) {
    for (bool scheduled : {true, false}) {
      std::string name = std::string("E2/") + q.name + "/" +
                         (scheduled ? "scheduled" : "unscheduled");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [src = q.src, scheduled](benchmark::State& s) {
            BM_Query(s, src, scheduled);
          })
          ->Arg(10'000)
          ->Arg(50'000)
          ->Arg(200'000)
          ->Arg(400'000)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace raptor::bench

int main(int argc, char** argv) {
  raptor::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
