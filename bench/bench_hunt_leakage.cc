// Experiment E6 (DESIGN.md): the paper's §III demo attack 2 — "Data
// Leakage After Shellshock Penetration" (the Figure 2 pipeline), hunted
// end-to-end: OSCTI report -> extraction -> behavior graph -> TBQL
// synthesis -> scheduled execution, scored against the narrated ground
// truth amid increasing benign noise.
//
// Expected shape: precision and recall stay 1.0 while exec time grows
// mildly with trace size.

#include "hunt_common.h"

int main(int argc, char** argv) {
  raptor::bench::Init(argc, argv, "hunt_leakage");
  raptor::bench::RunHuntExperiment(
      "E6", "Data Leakage After Shellshock Penetration",
      [](raptor::audit::WorkloadGenerator* gen, raptor::audit::AuditLog* log) {
        return gen->InjectDataLeakageAttack(log);
      });
  raptor::bench::Finish();
  return 0;
}
