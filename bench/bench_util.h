// Shared helpers for the experiment harness: precision/recall accounting
// and paper-style table printing.
//
// Every bench supports two output modes. The default prints the familiar
// human tables. `--json` suppresses all prose and emits one machine-readable
// JSON document on stdout ({"bench", "tables", "extras"}), which
// scripts/bench.sh captures as BENCH_<name>.json to seed the perf
// trajectory. Benches route prose through Narrate() and tabular data
// through Table so both modes stay in sync.

#pragma once

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/json.h"
#include "nlp/pipeline.h"

namespace raptor::bench {

/// Micro-averaged precision/recall accumulator.
struct PrCounter {
  size_t tp = 0, fp = 0, fn = 0;

  void Score(const std::set<std::string>& extracted,
             const std::set<std::string>& truth) {
    for (const auto& e : extracted) {
      if (truth.count(e) > 0) {
        ++tp;
      } else {
        ++fp;
      }
    }
    for (const auto& t : truth) {
      if (extracted.count(t) == 0) ++fn;
    }
  }

  double Precision() const {
    return tp + fp == 0 ? 1.0 : static_cast<double>(tp) / (tp + fp);
  }
  double Recall() const {
    return tp + fn == 0 ? 1.0 : static_cast<double>(tp) / (tp + fn);
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return p + r == 0 ? 0.0 : 2 * p * r / (p + r);
  }
};

/// All IOC surface forms an extraction produced (canonical + aliases).
inline std::set<std::string> ExtractedIocs(const nlp::ExtractionResult& r) {
  std::set<std::string> out;
  for (const nlp::IocEntity& n : r.graph.nodes()) {
    out.insert(n.text);
    for (const std::string& a : n.aliases) out.insert(a);
  }
  // Occurrences that never made it into the graph still count as extracted.
  for (const nlp::IocSpan& s : r.raw_iocs) out.insert(s.text);
  return out;
}

/// Relation triples as "subject|verb|object" strings.
inline std::set<std::string> ExtractedRelations(
    const nlp::ExtractionResult& r) {
  std::set<std::string> out;
  for (const nlp::BehaviorEdge& e : r.graph.edges()) {
    out.insert(r.graph.node(e.src).text + "|" + e.verb + "|" +
               r.graph.node(e.dst).text);
  }
  return out;
}

// --- Output mode and the machine-readable document. ---

/// Accumulated output for `--json` mode: one document per bench run.
struct BenchDoc {
  std::string name;
  bool json = false;
  Json::Array tables;
  Json::Object extras;
};

inline BenchDoc& Doc() {
  static BenchDoc doc;
  return doc;
}

inline bool JsonMode() { return Doc().json; }

/// Call first in main(): records the bench name and consumes `--json`.
inline void Init(int argc, char** argv, const char* bench_name) {
  Doc().name = bench_name;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") Doc().json = true;
  }
}

/// Human-mode prose (titles, shape checks). Silent under `--json` so stdout
/// stays a single parseable document.
__attribute__((format(printf, 1, 2))) inline void Narrate(const char* fmt,
                                                          ...) {
  if (JsonMode()) return;
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stdout, fmt, ap);
  va_end(ap);
}

/// Attaches a free-form value to the JSON document (e.g. the synthesized
/// query text). No-op in human mode — pair with a Narrate() call.
inline void AddExtra(const std::string& key, Json value) {
  if (JsonMode()) Doc().extras[key] = std::move(value);
}

/// Call last in main(): emits the JSON document in `--json` mode.
inline void Finish() {
  if (!JsonMode()) return;
  Json::Object out;
  out["bench"] = Doc().name;
  out["tables"] = Json(std::move(Doc().tables));
  out["extras"] = Json(std::move(Doc().extras));
  std::printf("%s\n", Json(std::move(out)).Dump(2).c_str());
}

inline void PrintRule(size_t width = 78) {
  if (JsonMode()) return;
  std::string line(width, '-');
  std::printf("%s\n", line.c_str());
}

/// One table cell: the JSON value plus its human rendering. Implicit
/// constructors let AddRow take brace lists of mixed types.
struct Cell {
  Json value;
  std::string display;

  Cell(const char* s) : value(s), display(s) {}             // NOLINT
  Cell(const std::string& s) : value(s), display(s) {}      // NOLINT
  Cell(double v, int precision = 2) : value(v) {            // NOLINT
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    display = buf;
  }
  Cell(size_t v)                                            // NOLINT
      : value(static_cast<double>(v)), display(std::to_string(v)) {}
  Cell(int v) : value(v), display(std::to_string(v)) {}     // NOLINT
  Cell(bool b)                                              // NOLINT
      : value(b), display(b ? "yes" : "no") {}
};

/// A named result table. Collect rows, then Done() either pretty-prints
/// (human mode) or appends {"name","columns","rows"} to the document.
class Table {
 public:
  Table(std::string name, std::vector<std::string> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  Table& AddRow(std::vector<Cell> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void Done() {
    if (JsonMode()) {
      Json::Object table;
      table["name"] = name_;
      Json::Array columns;
      for (const std::string& c : columns_) columns.push_back(c);
      table["columns"] = Json(std::move(columns));
      Json::Array rows;
      for (const std::vector<Cell>& row : rows_) {
        Json::Array cells;
        for (const Cell& c : row) cells.push_back(c.value);
        rows.push_back(Json(std::move(cells)));
      }
      table["rows"] = Json(std::move(rows));
      Doc().tables.push_back(Json(std::move(table)));
      return;
    }
    PrintHuman();
  }

 private:
  void PrintHuman() const {
    // Column width: max of header and cells; strings left-align.
    std::vector<size_t> widths(columns_.size());
    std::vector<bool> left(columns_.size(), false);
    for (size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
      for (const std::vector<Cell>& row : rows_) {
        if (c >= row.size()) continue;
        widths[c] = std::max(widths[c], row[c].display.size());
        if (row[c].value.is_string()) left[c] = true;
      }
    }
    size_t total = columns_.size() >= 1 ? 3 * (columns_.size() - 1) : 0;
    for (size_t w : widths) total += w;

    auto print_row = [&](const std::vector<std::string>& cells) {
      std::string line;
      for (size_t c = 0; c < columns_.size(); ++c) {
        const std::string& text = c < cells.size() ? cells[c] : "";
        std::string pad(widths[c] > text.size() ? widths[c] - text.size() : 0,
                        ' ');
        if (c > 0) line += " | ";
        line += left[c] ? text + pad : pad + text;
      }
      std::printf("%s\n", line.c_str());
    };

    PrintRule(total);
    print_row(columns_);
    PrintRule(total);
    for (const std::vector<Cell>& row : rows_) {
      std::vector<std::string> cells;
      cells.reserve(row.size());
      for (const Cell& cell : row) cells.push_back(cell.display);
      print_row(cells);
    }
    PrintRule(total);
  }

  std::string name_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace raptor::bench
