// Shared helpers for the experiment harness: precision/recall accounting
// and paper-style table printing.

#pragma once

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "nlp/pipeline.h"

namespace raptor::bench {

/// Micro-averaged precision/recall accumulator.
struct PrCounter {
  size_t tp = 0, fp = 0, fn = 0;

  void Score(const std::set<std::string>& extracted,
             const std::set<std::string>& truth) {
    for (const auto& e : extracted) {
      if (truth.count(e) > 0) {
        ++tp;
      } else {
        ++fp;
      }
    }
    for (const auto& t : truth) {
      if (extracted.count(t) == 0) ++fn;
    }
  }

  double Precision() const {
    return tp + fp == 0 ? 1.0 : static_cast<double>(tp) / (tp + fp);
  }
  double Recall() const {
    return tp + fn == 0 ? 1.0 : static_cast<double>(tp) / (tp + fn);
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return p + r == 0 ? 0.0 : 2 * p * r / (p + r);
  }
};

/// All IOC surface forms an extraction produced (canonical + aliases).
inline std::set<std::string> ExtractedIocs(const nlp::ExtractionResult& r) {
  std::set<std::string> out;
  for (const nlp::IocEntity& n : r.graph.nodes()) {
    out.insert(n.text);
    for (const std::string& a : n.aliases) out.insert(a);
  }
  // Occurrences that never made it into the graph still count as extracted.
  for (const nlp::IocSpan& s : r.raw_iocs) out.insert(s.text);
  return out;
}

/// Relation triples as "subject|verb|object" strings.
inline std::set<std::string> ExtractedRelations(
    const nlp::ExtractionResult& r) {
  std::set<std::string> out;
  for (const nlp::BehaviorEdge& e : r.graph.edges()) {
    out.insert(r.graph.node(e.src).text + "|" + e.verb + "|" +
               r.graph.node(e.dst).text);
  }
  return out;
}

inline void PrintRule(size_t width = 78) {
  std::string line(width, '-');
  std::printf("%s\n", line.c_str());
}

}  // namespace raptor::bench
