// Observability overhead (ISSUE 2 acceptance): instrumentation with no
// sink attached must cost a few atomic ops per batch, and end-to-end
// execution must stay within 5% of the uninstrumented wall time.
//
// Two levels:
//   (a) micro: cost of one counter increment, one histogram observation,
//       and one Span construction with no active trace (the no-sink path).
//   (b) macro: bench_execution's default scenario (the scheduled leakage
//       query on a 50k-event trace) with the tracer disabled (no sink),
//       enabled (ring sink), and with full profile collection. The
//       notrace/traced/profiled times must agree within 5%.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/threat_raptor.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/slow_journal.h"
#include "obs/trace.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"

namespace raptor::bench {
namespace {

// --- (a) Micro costs of the no-sink instrumentation primitives. ---

void BM_CounterIncrement(benchmark::State& state) {
  obs::Counter* counter = obs::Registry::Default().GetCounter(
      "bench_overhead_counter", "overhead bench scratch counter");
  for (auto _ : state) {
    counter->Increment();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram* histogram = obs::Registry::Default().GetHistogram(
      "bench_overhead_ms", "overhead bench scratch histogram");
  double v = 0;
  for (auto _ : state) {
    histogram->Observe(v);
    v += 0.125;
    benchmark::DoNotOptimize(histogram);
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_SpanNoSink(benchmark::State& state) {
  obs::Tracer& tracer = obs::Tracer::Default();
  bool was_enabled = tracer.enabled();
  tracer.set_enabled(false);
  for (auto _ : state) {
    obs::Span span = tracer.StartSpan("noop");
    benchmark::DoNotOptimize(span.active());
  }
  tracer.set_enabled(was_enabled);
}
BENCHMARK(BM_SpanNoSink);

void BM_SpanRecorded(benchmark::State& state) {
  obs::Tracer& tracer = obs::Tracer::Default();
  obs::TraceScope scope = tracer.BeginTrace("bench", /*force=*/true);
  for (auto _ : state) {
    obs::Span span = tracer.StartSpan("op");
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(BM_SpanRecorded);

// Resource accounting: one batch charge (the storage hot-path shape — a
// handful of these per load/sync/query, never per row).
void BM_ResourceCharge(benchmark::State& state) {
  obs::ResourceTracker tracker;
  for (auto _ : state) {
    tracker.Charge(obs::Component::kEngine, 4096);
    tracker.Charge(obs::Component::kEngine, -4096);
    benchmark::DoNotOptimize(tracker.LiveBytes(obs::Component::kEngine));
  }
}
BENCHMARK(BM_ResourceCharge);

// The RAII form the engine uses around a query's intermediate results.
void BM_MemoryScope(benchmark::State& state) {
  obs::ResourceTracker tracker;
  for (auto _ : state) {
    obs::MemoryScope scope(obs::Component::kEngine, &tracker);
    scope.Charge(1 << 16);
    benchmark::DoNotOptimize(scope.charged());
  }
}
BENCHMARK(BM_MemoryScope);

// The per-query slow-journal check on the fast (under-threshold) path:
// every query pays this, so it must stay a mutex acquire and two compares.
void BM_SlowJournalMiss(benchmark::State& state) {
  obs::SlowJournal journal;
  journal.Configure({.latency_threshold_ms = 1e9,
                     .bytes_threshold = 1ull << 60,
                     .capacity = 8});
  for (auto _ : state) {
    benchmark::DoNotOptimize(journal.ShouldRecord(0.5, 1024));
  }
}
BENCHMARK(BM_SlowJournalMiss);

// --- (b) Macro: bench_execution's default scenario, three sink levels. ---

const char* kLeakageQuery =
    "evt1: proc p1[\"%/bin/tar%\"] read file f1[\"/etc/passwd\"]\n"
    "evt2: proc p1 write file f2[\"/tmp/data.tar\"]\n"
    "evt3: proc p2[\"%/bin/gzip%\"] read file f2\n"
    "evt4: proc p2 write file f3[\"/tmp/data.tar.gz\"]\n"
    "evt5: proc p3[\"%/usr/bin/curl%\"] read file f3\n"
    "evt6: proc p3 send net n1[dstip = \"161.35.10.8\"]\n"
    "with evt1 before evt2, evt2 before evt3, evt3 before evt4, "
    "evt4 before evt5, evt5 before evt6\n"
    "return p1, p2, p3, f1, f2, f3, n1";

ThreatRaptor& GetTrace() {
  static auto* system = [] {
    auto s = std::make_unique<ThreatRaptor>();
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(25'000, s->mutable_log());
    gen.InjectDataLeakageAttack(s->mutable_log());
    gen.GenerateBenign(25'000, s->mutable_log());
    (void)s->FinalizeStorage();
    return s.release();
  }();
  return *system;
}

enum class Sink { kNone, kRing, kProfile };

void BM_Execute(benchmark::State& state, Sink sink) {
  ThreatRaptor& system = GetTrace();
  auto query = tbql::Parse(kLeakageQuery);
  if (!query.ok() || !tbql::Analyze(&*query).ok()) std::abort();
  engine::QueryEngine engine(
      &system.log(),
      const_cast<rel::RelationalDatabase*>(&system.relational()),
      const_cast<graph::GraphStore*>(&system.graph()));
  engine::ExecutionOptions opts;
  opts.collect_profile = sink == Sink::kProfile;

  obs::Tracer& tracer = obs::Tracer::Default();
  bool was_enabled = tracer.enabled();
  tracer.set_enabled(sink == Sink::kRing);

  for (auto _ : state) {
    auto result = engine.Execute(*query, opts);
    benchmark::DoNotOptimize(result);
  }
  tracer.set_enabled(was_enabled);
}

}  // namespace
}  // namespace raptor::bench

int main(int argc, char** argv) {
  using raptor::bench::BM_Execute;
  using raptor::bench::Sink;
  benchmark::RegisterBenchmark(
      "E2overhead/leakage/notrace",
      [](benchmark::State& s) { BM_Execute(s, Sink::kNone); })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "E2overhead/leakage/traced",
      [](benchmark::State& s) { BM_Execute(s, Sink::kRing); })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "E2overhead/leakage/profiled",
      [](benchmark::State& s) { BM_Execute(s, Sink::kProfile); })
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
