// Experiment E5 (DESIGN.md): the paper's §III demo attack 1 — "Password
// Cracking After Shellshock Penetration", hunted end-to-end from the OSCTI
// report, scored against the narrated ground truth amid benign noise.
//
// Expected shape: precision and recall stay 1.0 while exec time grows
// mildly with trace size.

#include "hunt_common.h"

int main(int argc, char** argv) {
  raptor::bench::Init(argc, argv, "hunt_password");
  raptor::bench::RunHuntExperiment(
      "E5", "Password Cracking After Shellshock Penetration",
      [](raptor::audit::WorkloadGenerator* gen, raptor::audit::AuditLog* log) {
        return gen->InjectPasswordCrackingAttack(log);
      });
  raptor::bench::Finish();
  return 0;
}
