// Experiment E8 (DESIGN.md): variable-length event path patterns (paper
// §II-D advanced syntax, §II-F backend choice).
//
// Sweeps fork-chain length and the pattern's maximum hop bound, and
// compares the graph backend (what TBQL path patterns compile to — the
// paper's Cypher target) against emulating the same search with relational
// self-joins (one event-table join per hop — what SQL would require).
//
// Expected shape: the graph backend wins by orders of magnitude — per-hop
// adjacency expansion is pointer-chasing, while every relational hop pays
// index probes into the full event table. (The emulation here is even
// generous to SQL: it performs semi-join frontier expansion rather than
// the naive k-way self-join a hand-written query would use.)

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "audit/generator.h"
#include "storage/graph/graph_store.h"
#include "storage/relational/database.h"

namespace raptor::bench {
namespace {

using audit::AuditLog;
using audit::EntityId;
using audit::Operation;

struct PathTrace {
  std::unique_ptr<AuditLog> log;
  std::unique_ptr<rel::RelationalDatabase> rel_db;
  std::unique_ptr<graph::GraphStore> graph_db;
  std::vector<EntityId> sources;
};

/// 50k benign events plus one fork chain of the requested length.
PathTrace& GetTrace(size_t chain_len) {
  static auto* cache = new std::map<size_t, PathTrace>();
  auto it = cache->find(chain_len);
  if (it == cache->end()) {
    PathTrace t;
    t.log = std::make_unique<AuditLog>();
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(25'000, t.log.get());
    gen.InjectForkChain("/evil/root", chain_len, Operation::kRead,
                        "/etc/secret", t.log.get());
    gen.GenerateBenign(25'000, t.log.get());
    t.rel_db = std::make_unique<rel::RelationalDatabase>();
    t.rel_db->Load(*t.log);
    t.graph_db = std::make_unique<graph::GraphStore>(*t.log);
    for (const auto& e : t.log->entities()) {
      if (e.type == audit::EntityType::kProcess &&
          e.exename == "/evil/root") {
        t.sources.push_back(e.id);
      }
    }
    it = cache->emplace(chain_len, std::move(t)).first;
  }
  return it->second;
}

/// Graph backend: DFS with hop bounds (what path patterns compile to).
size_t GraphSearch(PathTrace& t, size_t max_hops) {
  graph::PathConstraints c;
  c.min_hops = 1;
  c.max_hops = max_hops;
  c.final_ops = {Operation::kRead};
  auto paths = t.graph_db->FindPaths(
      t.sources,
      [](const audit::SystemEntity& e) {
        return e.type == audit::EntityType::kFile &&
               e.path == "/etc/secret";
      },
      c);
  return paths.size();
}

/// Relational emulation: iterative self-joins of the event table — frontier
/// expansion hop by hop through fork events, final hop through reads.
size_t RelationalSearch(PathTrace& t, size_t max_hops) {
  rel::Table& events = t.rel_db->events();
  const rel::Schema& schema = events.schema();
  rel::ColumnId c_subject = schema.Find("subject");
  rel::ColumnId c_object = schema.Find("object");
  rel::ColumnId c_optype = schema.Find("optype");

  EntityId target = audit::kInvalidEntityId;
  for (const auto& e : t.log->entities()) {
    if (e.type == audit::EntityType::kFile && e.path == "/etc/secret") {
      target = e.id;
    }
  }

  size_t found = 0;
  std::vector<EntityId> frontier = t.sources;
  for (size_t hop = 1; hop <= max_hops; ++hop) {
    std::vector<EntityId> next;
    for (EntityId node : frontier) {
      // Final-hop join: read events from this node to the target.
      for (rel::RowId row : events.Select(
               {{c_subject, rel::CompareOp::kEq,
                 rel::Value(static_cast<int64_t>(node))},
                {c_optype, rel::CompareOp::kEq,
                 rel::Value(static_cast<int64_t>(Operation::kRead))},
                {c_object, rel::CompareOp::kEq,
                 rel::Value(static_cast<int64_t>(target))}})) {
        (void)row;
        ++found;
      }
      // Chaining join: fork events extend the frontier.
      if (hop < max_hops) {
        for (rel::RowId row : events.Select(
                 {{c_subject, rel::CompareOp::kEq,
                   rel::Value(static_cast<int64_t>(node))},
                  {c_optype, rel::CompareOp::kEq,
                   rel::Value(static_cast<int64_t>(Operation::kFork))}})) {
          next.push_back(static_cast<EntityId>(
              events.row(row)[c_object].AsInt()));
        }
      }
    }
    frontier = std::move(next);
  }
  return found;
}

void BM_GraphPath(benchmark::State& state) {
  auto chain_len = static_cast<size_t>(state.range(0));
  auto max_hops = static_cast<size_t>(state.range(1));
  PathTrace& t = GetTrace(chain_len);
  size_t found = 0;
  for (auto _ : state) {
    found = GraphSearch(t, max_hops);
    benchmark::DoNotOptimize(found);
  }
  state.counters["paths_found"] = static_cast<double>(found);
}

void BM_RelationalPath(benchmark::State& state) {
  auto chain_len = static_cast<size_t>(state.range(0));
  auto max_hops = static_cast<size_t>(state.range(1));
  PathTrace& t = GetTrace(chain_len);
  size_t found = 0;
  for (auto _ : state) {
    found = RelationalSearch(t, max_hops);
    benchmark::DoNotOptimize(found);
  }
  state.counters["paths_found"] = static_cast<double>(found);
}

void RegisterAll() {
  for (int64_t chain : {1, 2, 3, 5}) {
    for (int64_t hops : {2, 4, 6}) {
      if (hops < chain + 1) continue;  // pattern can't reach the target
      benchmark::RegisterBenchmark("E8/graph_backend", BM_GraphPath)
          ->Args({chain, hops})
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark("E8/relational_selfjoin",
                                   BM_RelationalPath)
          ->Args({chain, hops})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace
}  // namespace raptor::bench

int main(int argc, char** argv) {
  raptor::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
