// Experiment E10 (DESIGN.md): behavior-graph hunting vs the structured-feed
// baseline — the paper's core motivation (§I).
//
// Structured OSCTI feeds carry isolated Indicators of Compromise. Hunting
// with them means flagging every event that touches any indicator — no
// relations, no process identity, no temporal order. This bench builds a
// STIX-like feed from the same intelligence as the attack report, hunts
// both ways, and scores against ground truth. The benign workload includes
// *legitimate* sensitive-resource activity (sshd reading /etc/passwd and
// /etc/shadow, the backup job archiving /etc), which is what isolated-IOC
// matching false-positives on.
//
// Expected shape: both approaches recall the attack, but IOC-only precision
// collapses as benign traffic grows, while behavior-graph hunting — which
// demands the full connected, ordered chain — stays at 1.0.

#include <cstdio>
#include <set>

#include "bench_util.h"
#include "core/threat_raptor.h"
#include "cti/feed.h"

namespace raptor::bench {
namespace {

struct Score {
  size_t matched = 0;
  double precision = 0;
  double recall = 0;
};

Score Evaluate(const std::vector<audit::EventId>& matched,
               const std::set<audit::EventId>& attack_events,
               const std::set<audit::EventId>& core_events) {
  Score s;
  s.matched = matched.size();
  size_t attack_hits = 0, core_hits = 0;
  for (audit::EventId id : matched) {
    attack_hits += attack_events.count(id);
    core_hits += core_events.count(id);
  }
  s.precision = matched.empty()
                    ? 0.0
                    : static_cast<double>(attack_hits) / matched.size();
  // Recall against the narrated (core) events.
  size_t found = 0;
  for (audit::EventId id : core_events) {
    if (std::binary_search(matched.begin(), matched.end(), id)) ++found;
  }
  s.recall = core_events.empty()
                 ? 0.0
                 : static_cast<double>(found) / core_events.size();
  (void)core_hits;
  return s;
}

void Run() {
  Narrate("E10: behavior-graph hunting vs isolated-IOC matching "
          "(structured-feed baseline)\n");
  Table table("ioc_baseline",
              {"benign", "tr_matched", "tr_precision", "tr_recall",
               "ioc_matched", "ioc_precision", "ioc_recall"});

  for (size_t benign : {20'000u, 100'000u, 400'000u}) {
    ThreatRaptor system;
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(benign / 2, system.mutable_log());
    audit::AttackTrace attack =
        gen.InjectDataLeakageAttack(system.mutable_log());
    gen.GenerateBenign(benign / 2, system.mutable_log());
    (void)system.FinalizeStorage();

    auto attack_ids = system.TranslateEventIds(attack.event_ids);
    auto core_ids = system.TranslateEventIds(attack.core_event_ids);
    std::set<audit::EventId> attack_set(attack_ids.begin(), attack_ids.end());
    std::set<audit::EventId> core_set(core_ids.begin(), core_ids.end());

    // Behavior-graph hunt (the full pipeline).
    auto hunt = system.Hunt(attack.report_text);
    if (!hunt.ok()) {
      Narrate("hunt failed: %s\n", hunt.status().ToString().c_str());
      return;
    }
    Score behavior =
        Evaluate(hunt->result.MatchedEvents(), attack_set, core_set);

    // IOC-only baseline: a STIX bundle built from the same intelligence,
    // one disconnected query per indicator, union of all matches.
    nlp::IocRecognizer recognizer;
    auto indicators =
        cti::IndicatorsFromText(attack.report_text, recognizer);
    std::set<audit::EventId> ioc_matched_set;
    for (const tbql::Query& query : cti::SynthesizeIocQueries(indicators)) {
      auto result = system.ExecuteQuery(query);
      if (!result.ok()) continue;
      for (audit::EventId id : result->MatchedEvents()) {
        ioc_matched_set.insert(id);
      }
    }
    std::vector<audit::EventId> ioc_matched(ioc_matched_set.begin(),
                                            ioc_matched_set.end());
    Score ioc_only = Evaluate(ioc_matched, attack_set, core_set);

    table.AddRow({benign, behavior.matched, Cell(behavior.precision, 3),
                  Cell(behavior.recall, 2), ioc_only.matched,
                  Cell(ioc_only.precision, 3), Cell(ioc_only.recall, 2)});
  }
  table.Done();
  Narrate(
      "Shape check: both recall the narrated attack chain; IOC-only\n"
      "precision degrades with benign volume (legitimate /etc/passwd and\n"
      "/etc/shadow activity matches the indicators), while the behavior\n"
      "graph's connected, temporally ordered pattern stays exact — the\n"
      "paper's §I argument for extracting relations, not just IOCs.\n");
}

}  // namespace
}  // namespace raptor::bench

int main(int argc, char** argv) {
  raptor::bench::Init(argc, argv, "ioc_baseline");
  raptor::bench::Run();
  raptor::bench::Finish();
  return 0;
}
