// Structured-logging overhead (flight recorder acceptance): a disabled
// logger must cost two relaxed atomic loads per call site, and end-to-end
// execution with logging disabled must stay within 5% of the fully
// instrumented engine's wall time at any level setting.
//
// Two levels:
//   (a) micro: cost of one Log() call when the logger is disabled, when
//       the record is below the level threshold, when it commits to the
//       ring, and when a sampler declines it.
//   (b) macro: bench_execution's default scenario (the scheduled leakage
//       query on a 50k-event trace) with the logger disabled (nolog), at
//       INFO (the engine's DEBUG narration is filtered per record), and at
//       DEBUG (every scheduling decision commits). The gate: nolog and
//       info must agree within 5% — call sites are compiled in
//       unconditionally, so this is the price every non-API user pays.
//       debug is reported for scale, not gated; it buys one committed
//       record per pattern per query.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/threat_raptor.h"
#include "obs/log.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"

namespace raptor::bench {
namespace {

// --- (a) Micro costs of one call site at each gate. ---

void BM_LogDisabled(benchmark::State& state) {
  obs::Logger logger;  // local instance: default-disabled, no cross-talk
  for (auto _ : state) {
    logger.Log(obs::LogLevel::kWarn, "engine", "noop")
        .Field("pattern", "evt1");
    benchmark::DoNotOptimize(&logger);
  }
}
BENCHMARK(BM_LogDisabled);

void BM_LogBelowLevel(benchmark::State& state) {
  obs::Logger logger;
  logger.set_enabled(true);
  logger.set_min_level(obs::LogLevel::kWarn);
  for (auto _ : state) {
    logger.Log(obs::LogLevel::kDebug, "engine", "noop")
        .Field("pattern", "evt1");
    benchmark::DoNotOptimize(&logger);
  }
}
BENCHMARK(BM_LogBelowLevel);

void BM_LogCommitted(benchmark::State& state) {
  obs::Logger logger;
  logger.set_enabled(true);
  logger.set_min_level(obs::LogLevel::kDebug);
  for (auto _ : state) {
    logger.Log(obs::LogLevel::kInfo, "engine", "committed")
        .Field("pattern", "evt1")
        .Field("matches", static_cast<uint64_t>(42));
    benchmark::DoNotOptimize(&logger);
  }
}
BENCHMARK(BM_LogCommitted);

void BM_LogSamplerDeclined(benchmark::State& state) {
  obs::Logger logger;
  logger.set_enabled(true);
  // Burst exhausted immediately and never refilled: steady state is the
  // hot-path decline.
  obs::LogSampler sampler(/*burst=*/1.0, /*refill_per_sec=*/0.0);
  (void)sampler.Admit();
  for (auto _ : state) {
    logger.Sampled(obs::LogLevel::kWarn, "audit", "hot", &sampler);
    benchmark::DoNotOptimize(&logger);
  }
}
BENCHMARK(BM_LogSamplerDeclined);

// --- (b) Macro: bench_execution's default scenario, three log levels. ---

const char* kLeakageQuery =
    "evt1: proc p1[\"%/bin/tar%\"] read file f1[\"/etc/passwd\"]\n"
    "evt2: proc p1 write file f2[\"/tmp/data.tar\"]\n"
    "evt3: proc p2[\"%/bin/gzip%\"] read file f2\n"
    "evt4: proc p2 write file f3[\"/tmp/data.tar.gz\"]\n"
    "evt5: proc p3[\"%/usr/bin/curl%\"] read file f3\n"
    "evt6: proc p3 send net n1[dstip = \"161.35.10.8\"]\n"
    "with evt1 before evt2, evt2 before evt3, evt3 before evt4, "
    "evt4 before evt5, evt5 before evt6\n"
    "return p1, p2, p3, f1, f2, f3, n1";

ThreatRaptor& GetTrace() {
  static auto* system = [] {
    auto s = std::make_unique<ThreatRaptor>();
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(25'000, s->mutable_log());
    gen.InjectDataLeakageAttack(s->mutable_log());
    gen.GenerateBenign(25'000, s->mutable_log());
    (void)s->FinalizeStorage();
    return s.release();
  }();
  return *system;
}

enum class LogMode { kDisabled, kInfo, kDebug };

void BM_Execute(benchmark::State& state, LogMode mode) {
  ThreatRaptor& system = GetTrace();
  auto query = tbql::Parse(kLeakageQuery);
  if (!query.ok() || !tbql::Analyze(&*query).ok()) std::abort();
  engine::QueryEngine engine(
      &system.log(),
      const_cast<rel::RelationalDatabase*>(&system.relational()),
      const_cast<graph::GraphStore*>(&system.graph()));

  obs::Logger& logger = obs::Logger::Default();
  bool was_enabled = logger.enabled();
  obs::LogLevel was_level = logger.min_level();
  logger.set_enabled(mode != LogMode::kDisabled);
  logger.set_min_level(mode == LogMode::kDebug ? obs::LogLevel::kDebug
                                               : obs::LogLevel::kInfo);

  for (auto _ : state) {
    auto result = engine.Execute(*query, {});
    benchmark::DoNotOptimize(result);
  }
  logger.set_enabled(was_enabled);
  logger.set_min_level(was_level);
}

}  // namespace
}  // namespace raptor::bench

int main(int argc, char** argv) {
  using raptor::bench::BM_Execute;
  using raptor::bench::LogMode;
  benchmark::RegisterBenchmark(
      "E2overhead/leakage/nolog",
      [](benchmark::State& s) { BM_Execute(s, LogMode::kDisabled); })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "E2overhead/leakage/info",
      [](benchmark::State& s) { BM_Execute(s, LogMode::kInfo); })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "E2overhead/leakage/debug",
      [](benchmark::State& s) { BM_Execute(s, LogMode::kDebug); })
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
